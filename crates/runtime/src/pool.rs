//! The work-stealing lifeguard worker pool.
//!
//! A [`MonitorPool`] owns N worker threads — the software analogue of a pool
//! of lifeguard cores behind the LBA transport fabric. Each *tenant* (an
//! independent monitored application) opens a [`SessionHandle`]: the tenant
//! streams batched log records through a bounded
//! [`log_channel`](crate::log_channel) exactly as the application core
//! streams into the in-cache log buffer.
//!
//! Scheduling is **work stealing at session grain**. Every worker keeps a
//! deque of *resident* sessions and rotates through them, pumping a bounded
//! number of ready chunk batches per turn (the fairness bound). A worker
//! whose own sessions have nothing pending steals the most recently queued
//! *runnable* session — one with buffered batches — from another worker's
//! deque. Because the unit of theft is the whole session, its lifeguard,
//! dispatch pipeline and shadow-memory shard transfer to the thief along
//! with the pending batches: the session is always owned by exactly one
//! worker at a time, so the hot path stays lock- and shared-metadata-free
//! while a hot tenant can no longer starve the sessions that used to be
//! pinned behind it.
//!
//! The per-session hot path is batch-grain end to end: one
//! [`DispatchPipeline::dispatch_batch`] call expands a chunk through
//! extraction → IT → ETCT → IF into a reusable [`EventBuf`], and one
//! [`Lifeguard::handle_batch`] call (static dispatch through
//! [`AnyLifeguard`]) runs the handlers — no closure, virtual call or heap
//! allocation per record.
//!
//! Workers also execute [`EpochJob`]s for the epoch-parallel path (see
//! [`crate::epoch`]) from a shared injector queue, interleaved with session
//! traffic; one job occupies its worker for at most one epoch's worth of
//! records.
//!
//! **Intra-session epoch pipelining** breaks the one-session-one-worker
//! wall for a *hot* tenant: when a session's log channel stays at least
//! half full for a few consecutive pump turns (or always, under
//! [`PipelineMode::Always`]), its owner switches to an update-only spine —
//! events the lifeguard's [`LifeguardKind::spine_elides`] mask marks
//! metadata-pure are skipped — and accumulates the drained record batches
//! into epochs that ship through the shared injector as [`EpochJob`]s.
//! Each job replays its epoch's full event stream against the
//! boundary-snapshotted shadow state, so the emitted violation sequence is
//! byte-identical to sequential monitoring; results merge back in epoch
//! order and their arenas recycle into the session's spare pool. When the
//! backlog drains the session drops back to plain pumping.

use crate::epoch::EpochConfig;
use crate::spsc::{
    log_channel_with, ChannelObs, ChannelStatsSnapshot, LogConsumer, LogProducer, SendError,
};
use crate::stats::{PoolStats, PoolStatsSnapshot, SessionReport};
use igm_core::{AccelConfig, DispatchPipeline};
use igm_lba::{chunks, EventBuf, TraceBatch};
use igm_lifeguards::{AnyLifeguard, CostSink, Lifeguard, LifeguardKind, Violation};
use igm_obs::{
    Counter, EventKind, EventRing, Gauge, Histogram, MetricsRegistry, RouteHandler, StatsServer,
};
use igm_span::{
    alloc_flow, tenant_id, FlightRecorder, FrameTag, RecordId, Sampler, SpanConfig, Stage, Track,
};
use std::collections::{BTreeMap, VecDeque};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker (lifeguard shard) threads.
    pub workers: usize,
    /// Per-session log channel capacity in compressed-record bytes
    /// (defaults to the paper's 64 KB buffer).
    pub channel_capacity_bytes: u32,
    /// Producer-side batch size in compressed-record bytes.
    pub chunk_bytes: u32,
    /// Metrics registry the pool reports into. `None` (the default) makes
    /// the pool create its own, reachable via [`MonitorPool::metrics`];
    /// pass a shared one to land several subsystems (pool, ingest server,
    /// forwarder) on a single stats endpoint.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Whether the pool runs a span [`FlightRecorder`] (`igm-span`):
    /// sampled frames get `channel_wait`/`dispatch` stage records, epoch
    /// jobs get `epoch_job` ones, violations snapshot their frame's span
    /// chain into the event ring, and [`MonitorPool::serve_stats`] serves
    /// `/spans.json` and `/trace`. On by default — unsampled frames cost
    /// one branch per batch (see the bench's `span_overhead` section).
    pub spans: bool,
    /// When sessions switch to intra-session epoch pipelining
    /// ([`PipelineMode::Auto`] by default: hot sessions only).
    pub pipeline: PipelineMode,
    /// Epoch sizing for pipelined sessions. Defaults to
    /// [`EpochConfig::adaptive`] — epochs are steady-state now, so the
    /// check-density feedback sizing is the pool default.
    pub epoch: EpochConfig,
}

/// When a session switches to intra-session epoch pipelining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Pipeline a session while its log channel runs hot (at least half
    /// full for [`HOT_TURNS_TO_PIPELINE`] consecutive pump turns) and its
    /// lifeguard's spine can elide something
    /// ([`LifeguardKind::spine_elides_any`]); drop back once the backlog
    /// drains. The default.
    #[default]
    Auto,
    /// Pipeline every session from its first record, whatever the
    /// lifeguard (bench/determinism-test mode).
    Always,
    /// Never pipeline.
    Never,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            channel_capacity_bytes: igm_lba::buffer::DEFAULT_CAPACITY_BYTES,
            // A quarter of the 64 KB buffer per producer-side chunk: on the
            // batch-grain hot path the per-chunk costs (channel lock, wake,
            // dispatch setup) are fixed, so larger chunks amortize them —
            // 16 KB measures ~25-40% faster than 4 KB at every worker count
            // while still keeping four chunks in flight per channel.
            chunk_bytes: 16 * 1024,
            metrics: None,
            spans: true,
            pipeline: PipelineMode::default(),
            epoch: EpochConfig::adaptive(),
        }
    }
}

impl PoolConfig {
    /// A pool with `workers` workers and default transport sizes.
    pub fn with_workers(workers: usize) -> PoolConfig {
        PoolConfig { workers, ..PoolConfig::default() }
    }
}

/// Per-tenant monitoring configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Tenant label for reports and the violation stream.
    pub name: String,
    /// Which lifeguard monitors this tenant.
    pub lifeguard: LifeguardKind,
    /// Requested accelerators (masked by the lifeguard's Figure 2 row).
    pub accel: AccelConfig,
    /// Synthetic-workload mode (see
    /// [`igm_lifeguards::Lifeguard::set_synthetic_workload_mode`]).
    pub synthetic_workload: bool,
    /// Loader-established regions pre-marked before monitoring starts.
    pub premark: Vec<(u32, u32)>,
    /// Durable trace id ([`igm_span::trace_id`] of the captured
    /// artifact's stem) when this session's record stream is teed to a
    /// trace file; `0` for a live-only stream. Violations then carry
    /// [`igm_span::RecordId`]s that join against the trace lake. Never
    /// wire-encoded — capture/ingest assigns it server-side.
    pub trace: u32,
}

impl SessionConfig {
    /// A baseline (unaccelerated) session.
    pub fn new(name: impl Into<String>, lifeguard: LifeguardKind) -> SessionConfig {
        SessionConfig {
            name: name.into(),
            lifeguard,
            accel: AccelConfig::baseline(),
            synthetic_workload: false,
            premark: Vec::new(),
            trace: 0,
        }
    }

    /// Replaces the accelerator configuration.
    pub fn accel(mut self, accel: AccelConfig) -> SessionConfig {
        self.accel = accel;
        self
    }

    /// Enables synthetic-workload mode.
    pub fn synthetic(mut self) -> SessionConfig {
        self.synthetic_workload = true;
        self
    }

    /// Adds pre-marked regions.
    pub fn premark(mut self, regions: &[(u32, u32)]) -> SessionConfig {
        self.premark.extend_from_slice(regions);
        self
    }

    /// Tags the session with a durable trace id (see
    /// [`SessionConfig::trace`]).
    pub fn trace(mut self, trace: u32) -> SessionConfig {
        self.trace = trace;
        self
    }

    pub(crate) fn build_lifeguard(&self) -> AnyLifeguard {
        let mut lg = self.lifeguard.build_any(&self.accel);
        if self.synthetic_workload {
            lg.set_synthetic_workload_mode(true);
        }
        for (base, len) in &self.premark {
            lg.premark_region(*base, *len);
        }
        lg
    }
}

/// Identifies a session within a pool.
pub type SessionId = u64;

/// One violation, tagged with its reporting session, flowing through the
/// pool's aggregated [`ViolationStream`].
#[derive(Debug, Clone)]
pub struct PoolViolation {
    /// Reporting session.
    pub session: SessionId,
    /// Tenant label.
    pub tenant: String,
    /// Which lifeguard reported.
    pub lifeguard: LifeguardKind,
    /// Global id of the faulting trace record, when the session carries
    /// a durable trace identity ([`SessionConfig::trace`]) and the
    /// violation anchors to a record — the lake join key.
    pub record: Option<RecordId>,
    /// The violation itself.
    pub violation: Violation,
}

/// Aggregated, pool-wide stream of violations in arrival order (per-session
/// order is preserved; cross-session order is arrival order).
#[derive(Debug)]
pub struct ViolationStream {
    rx: Receiver<PoolViolation>,
}

impl ViolationStream {
    /// Drains everything currently available without blocking.
    pub fn drain(&self) -> Vec<PoolViolation> {
        self.rx.try_iter().collect()
    }

    /// Blocks up to `timeout` for the next violation.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<PoolViolation> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// One worker's wake-up doorbell, sequence-numbered so a worker that went
/// busy between reading the sequence and waiting can never miss a ring.
///
/// Each worker parks on its **own** doorbell. Ringing is lock-free while
/// the target worker is awake — the common steady state, where every
/// `send_batch` would otherwise fight N workers for a mutex. The SeqCst
/// ordering of `seq`/`sleepers` gives the classic flag-flag guarantee: if
/// the ringer reads `sleepers == 0`, the about-to-sleep worker's later
/// sequence check is ordered after the ring and sees the new value, so it
/// never parks on a stale count.
#[derive(Debug, Default)]
pub(crate) struct Doorbell {
    seq: AtomicU64,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    bell: Condvar,
}

impl Doorbell {
    /// Publishes a state change (the owning worker re-checks the world
    /// before its next park).
    fn bump(&self) {
        self.seq.fetch_add(1, Ordering::SeqCst);
    }

    /// Wakes the parked owner, if parked. Returns whether a sleeper was
    /// notified. Only meaningful after a [`Doorbell::bump`].
    fn notify_if_sleeping(&self) -> bool {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Serialize with the sleeper's check-then-wait.
            drop(self.lock.lock().unwrap());
            self.bell.notify_one();
            true
        } else {
            false
        }
    }

    /// Bump-and-notify; returns whether a sleeper was notified.
    fn ring(&self) -> bool {
        self.bump();
        self.notify_if_sleeping()
    }

    /// Racy peek at whether the owner is parked (wakeup-targeting hint).
    fn sleeping(&self) -> bool {
        self.sleepers.load(Ordering::SeqCst) > 0
    }

    fn epoch(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Blocks until the sequence moves past `seen` or `timeout` elapses.
    fn wait(&self, seen: u64, timeout: Duration) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = self.lock.lock().unwrap();
        if self.seq.load(Ordering::SeqCst) == seen {
            let _ = self.bell.wait_timeout(guard, timeout).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An epoch of records checked against a snapshotted lifeguard shard (see
/// [`crate::epoch`] and the pipelined path in [`ActiveSession`]).
pub(crate) struct EpochJob {
    pub index: usize,
    pub lifeguard: AnyLifeguard,
    pub pipeline: DispatchPipeline,
    /// The epoch's record batches, replayed in order against the snapshot.
    pub records: Vec<TraceBatch>,
    /// Global record sequence of the epoch's first record (for violation
    /// record-id attribution).
    pub first_record: u64,
    pub done: Sender<EpochResult>,
    /// `Some(home hint)` for jobs shipped by a pipelined session: the
    /// session already accounts records/delivered/violations on its live
    /// spine (the job must not double-count pool stats), and the session's
    /// current worker is rung when the result lands so drains do not wait
    /// out a park timeout.
    pub pipelined: Option<Arc<AtomicUsize>>,
}

/// Result of one [`EpochJob`].
#[derive(Debug)]
pub(crate) struct EpochResult {
    pub index: usize,
    pub violations: Vec<Violation>,
    /// The job's `first_record`, echoed back for attribution.
    pub first_record: u64,
    pub delivered: u64,
    /// The job's record batches, handed back so the epoch driver can
    /// recycle their column capacity instead of reallocating.
    pub records: Vec<TraceBatch>,
    /// The job's lifeguard panicked: the epoch's violations are unknown
    /// and the driver must not emit a silently truncated sequence.
    pub failed: bool,
}

/// One worker's resident-session deque with a lock-free occupancy mirror,
/// so steal scans (and the worker's own idle passes) skip empty shards
/// without touching the lock.
#[derive(Default)]
struct Shard {
    queue: Mutex<VecDeque<ActiveSession>>,
    len: AtomicUsize,
}

impl Shard {
    fn push(&self, session: ActiveSession) {
        let mut q = self.queue.lock().unwrap();
        q.push_back(session);
        self.len.store(q.len(), Ordering::Release);
    }

    fn pop(&self) -> Option<ActiveSession> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.queue.lock().unwrap();
        let session = q.pop_front();
        self.len.store(q.len(), Ordering::Release);
        session
    }

    /// Removes the most recently queued session with pending batches
    /// (steal-from-the-back: the deque front is what the owner will reach
    /// soonest).
    fn steal_runnable(&self) -> Option<ActiveSession> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.queue.lock().unwrap();
        let pos = q.iter().rposition(ActiveSession::has_pending)?;
        let session = q.remove(pos);
        self.len.store(q.len(), Ordering::Release);
        session
    }

    fn resident(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

/// State shared by the workers, the pool handle and every session handle.
struct PoolShared {
    /// One resident-session deque per worker. A session lives in exactly
    /// one deque — or in neither while the worker that popped it is pumping
    /// it, which is what makes a mid-pump session unstealable.
    shards: Vec<Shard>,
    /// Injector queue for epoch-parallel check jobs; any worker serves it.
    epoch_jobs: Mutex<VecDeque<EpochJob>>,
    /// Mirror of `epoch_jobs.len()`, so the (hot) worker loop skips the
    /// injector lock entirely while no epoch run is active.
    epoch_pending: AtomicUsize,
    /// One doorbell per worker (sticky wakeups: `send_batch` rings the
    /// session's home worker first).
    doorbells: Vec<Doorbell>,
    stats: PoolStats,
    shutdown: AtomicBool,
    violations_tx: Sender<PoolViolation>,
    stream_taken: AtomicBool,
    /// The registry everything below reports into (owned or caller-shared;
    /// see [`PoolConfig::metrics`]).
    metrics: Arc<MetricsRegistry>,
    /// `igm_dispatch_batch_nanos{lifeguard=…}`, indexed in
    /// [`LifeguardKind::ALL`] order; sessions clone their kind's handle.
    dispatch_hists: Vec<Histogram>,
    /// `igm_pool_epoch_job_nanos`.
    epoch_hist: Histogram,
    /// `igm_epoch_pipeline_active`: sessions currently pipelined.
    pipeline_active: Gauge,
    /// `igm_epoch_backlog_records`: records accepted by pipelined spines
    /// but not yet emitted by their epoch jobs.
    epoch_backlog: Gauge,
    /// `igm_epoch_journal_checks_total{lifeguard=…}`, indexed in
    /// [`LifeguardKind::ALL`] order: spine-elided (journaled) events whose
    /// checks were deferred to epoch jobs.
    journal_counters: Vec<Counter>,
    /// Registry handles every session log channel clones
    /// (`igm_channel_queue_latency_nanos`, `igm_channel_occupancy_bytes`).
    channel_obs: ChannelObs,
    /// The span flight recorder (`None` when [`PoolConfig::spans`] is
    /// off). Workers stamp `channel_wait`/`dispatch`/`epoch_job` stages
    /// for tagged (sampled) frames; `igm-net` endpoints attach to the
    /// same recorder so wire-side stages join the pool-side chains.
    recorder: Option<Arc<FlightRecorder>>,
    /// `igm_span_stage_nanos{stage=…}` for the pool-side stages (detached
    /// no-ops when spans are off).
    span_hists: SpanStageHists,
    /// Span origin for epoch jobs: they carry no producer frame tag, so
    /// sampled jobs chain under the pool's own epoch flow, keyed by job
    /// index.
    epoch_span: Option<EpochSpan>,
}

/// Pool-side stage histograms, indexed by name for the hot path.
struct SpanStageHists {
    channel_wait: Histogram,
    dispatch: Histogram,
    epoch_job: Histogram,
}

/// Flow id and sampler for the epoch-job span origin.
struct EpochSpan {
    flow: u32,
    sampler: Sampler,
}

impl PoolShared {
    /// Sticky wakeup: ring the session's home worker first, so an
    /// intermittent tenant keeps waking the worker that holds its shadow
    /// shard instead of random-walking between thieves. If the home worker
    /// is awake (busy), fall back to waking some parked worker — it can
    /// steal the session, so the pool stays work-conserving under load.
    fn ring_worker(&self, home: usize) {
        let n = self.doorbells.len();
        let home = home % n;
        if self.doorbells[home].ring() {
            return;
        }
        for off in 1..n {
            let db = &self.doorbells[(home + off) % n];
            // The peek is racy: a worker registering to sleep right now may
            // be missed, but the home doorbell was bumped above and the
            // park timeout bounds the cost of a lost fallback wake.
            if db.sleeping() && db.ring() {
                return;
            }
        }
    }

    /// Wakes one worker, any worker (epoch jobs live in a shared injector
    /// queue). Every doorbell is bumped — matching the old global-sequence
    /// semantics, so no about-to-park worker can sleep through the event —
    /// but only the first sleeper found is woken.
    fn ring_any(&self) {
        for db in &self.doorbells {
            db.bump();
        }
        for db in &self.doorbells {
            if db.notify_if_sleeping() {
                return;
            }
        }
    }

    /// Publishes an epoch job on the shared injector queue; any worker
    /// serves it.
    fn submit_epoch(&self, job: EpochJob) {
        // Increment the mirror before publishing the job: the counter may
        // transiently overstate the queue (workers then take the lock and
        // find nothing — harmless) but never understate or underflow it.
        self.epoch_pending.fetch_add(1, Ordering::SeqCst);
        self.epoch_jobs.lock().unwrap().push_back(job);
        self.ring_any();
    }

    /// Wakes every worker (session open/close, shutdown — rare control
    /// events where all workers must re-examine the world).
    fn ring_all(&self) {
        for db in &self.doorbells {
            db.bump();
        }
        for db in &self.doorbells {
            if db.sleepers.load(Ordering::SeqCst) > 0 {
                drop(db.lock.lock().unwrap());
                db.bell.notify_all();
            }
        }
    }
}

/// The streaming, multi-tenant monitoring runtime.
///
/// # Example
///
/// ```
/// use igm_lifeguards::LifeguardKind;
/// use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
/// use igm_isa::{Annotation, OpClass, MemRef, Reg, TraceEntry};
///
/// let pool = MonitorPool::new(PoolConfig::with_workers(2));
/// let session = pool.open_session(SessionConfig::new("app0", LifeguardKind::AddrCheck));
/// session.send_batch(vec![
///     TraceEntry::annot(0x1000, Annotation::Malloc { base: 0x9000, size: 64 }),
///     TraceEntry::op(0x1004, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }),
///     // Touches one byte past the allocation: a violation.
///     TraceEntry::op(0x1008, OpClass::MemToReg { src: MemRef::word(0x9040), rd: Reg::Ecx }),
/// ]).unwrap();
/// let report = session.finish();
/// assert_eq!(report.records, 3);
/// assert_eq!(report.violations.len(), 1);
/// pool.shutdown();
/// ```
pub struct MonitorPool {
    shared: Arc<PoolShared>,
    joins: Vec<JoinHandle<()>>,
    next_shard: AtomicUsize,
    next_session: AtomicU64,
    violations_rx: Mutex<Option<Receiver<PoolViolation>>>,
    chunk_bytes: u32,
    channel_capacity_bytes: u32,
    pipeline_mode: PipelineMode,
    epoch_cfg: EpochConfig,
}

impl MonitorPool {
    /// Spawns the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero.
    pub fn new(cfg: PoolConfig) -> MonitorPool {
        assert!(cfg.workers > 0, "a pool needs at least one worker");
        let (vtx, vrx) = mpsc::channel();
        let metrics = cfg.metrics.unwrap_or_default();
        let dispatch_hists = LifeguardKind::ALL
            .iter()
            .map(|kind| {
                metrics.histogram_with(
                    "igm_dispatch_batch_nanos",
                    "per-batch dispatch + handler latency",
                    &[("lifeguard", kind.name())],
                )
            })
            .collect();
        let journal_counters = LifeguardKind::ALL
            .iter()
            .map(|kind| {
                metrics.counter_with(
                    "igm_epoch_journal_checks_total",
                    "spine-elided (journaled) events whose checks ran in epoch jobs",
                    &[("lifeguard", kind.name())],
                )
            })
            .collect();
        let recorder = cfg.spans.then(|| {
            Arc::new(FlightRecorder::new(SpanConfig {
                // One ring per worker plus headroom for the ingest lanes
                // and forwarders that attach to the pool's recorder; each
                // writer site claims its own via `ring_handle`.
                rings: cfg.workers + 8,
                ..SpanConfig::default()
            }))
        });
        let span_hist = |stage: Stage| {
            if recorder.is_some() {
                metrics.histogram_with(
                    "igm_span_stage_nanos",
                    "per-stage latency of sampled frames (span flight recorder)",
                    &[("stage", stage.name())],
                )
            } else {
                Histogram::disabled()
            }
        };
        let span_hists = SpanStageHists {
            channel_wait: span_hist(Stage::ChannelWait),
            dispatch: span_hist(Stage::Dispatch),
            epoch_job: span_hist(Stage::EpochJob),
        };
        let epoch_span =
            recorder.as_ref().map(|r| EpochSpan { flow: alloc_flow(), sampler: r.sampler() });
        let channel_obs = ChannelObs {
            queue_latency: metrics.histogram(
                "igm_channel_queue_latency_nanos",
                "log-channel send-to-drain latency per batch",
            ),
            occupancy_bytes: metrics.gauge(
                "igm_channel_occupancy_bytes",
                "live compressed bytes buffered across the pool's log channels",
            ),
        };
        let shared = Arc::new(PoolShared {
            shards: (0..cfg.workers).map(|_| Shard::default()).collect(),
            epoch_jobs: Mutex::new(VecDeque::new()),
            epoch_pending: AtomicUsize::new(0),
            doorbells: (0..cfg.workers).map(|_| Doorbell::default()).collect(),
            stats: PoolStats::new(&metrics),
            shutdown: AtomicBool::new(false),
            violations_tx: vtx,
            stream_taken: AtomicBool::new(false),
            dispatch_hists,
            epoch_hist: metrics
                .histogram("igm_pool_epoch_job_nanos", "epoch-job execution latency"),
            pipeline_active: metrics.gauge(
                "igm_epoch_pipeline_active",
                "sessions currently running the intra-session epoch pipeline",
            ),
            epoch_backlog: metrics.gauge(
                "igm_epoch_backlog_records",
                "records accepted by pipelined spines but not yet emitted by epoch jobs",
            ),
            journal_counters,
            channel_obs,
            metrics,
            recorder,
            span_hists,
            epoch_span,
        });
        let joins = (0..cfg.workers)
            .map(|i| {
                let wshared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("igm-worker-{i}"))
                    .spawn(move || worker_main(i, wshared))
                    .expect("spawn lifeguard worker")
            })
            .collect();
        MonitorPool {
            shared,
            joins,
            next_shard: AtomicUsize::new(0),
            next_session: AtomicU64::new(0),
            violations_rx: Mutex::new(Some(vrx)),
            chunk_bytes: cfg.chunk_bytes,
            channel_capacity_bytes: cfg.channel_capacity_bytes,
            pipeline_mode: cfg.pipeline,
            epoch_cfg: cfg.epoch,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.shared.shards.len()
    }

    /// Opens a tenant session: builds the lifeguard shard, places it on a
    /// worker's deque (round-robin; the stealing scheduler corrects any
    /// imbalance at run time) and returns the producer-side handle.
    pub fn open_session(&self, cfg: SessionConfig) -> SessionHandle {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let lifeguard = cfg.build_lifeguard();
        let masked = cfg.lifeguard.mask_config(&cfg.accel);
        let pipeline = DispatchPipeline::new(lifeguard.etct(), &masked);
        let (producer, consumer) =
            log_channel_with(self.channel_capacity_bytes, self.shared.channel_obs.clone());
        let (done_tx, done_rx) = mpsc::channel();
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        // The home hint follows the session as workers re-queue or steal
        // it; `send_batch` rings the worker it points at first.
        let home = Arc::new(AtomicUsize::new(shard));
        let kind_index = LifeguardKind::ALL
            .iter()
            .position(|k| *k == cfg.lifeguard)
            .expect("every lifeguard kind is in ALL");
        self.shared.metrics.events().record(EventKind::SessionOpen {
            session: id,
            tenant: cfg.name.clone(),
            lifeguard: cfg.lifeguard.name().to_owned(),
        });
        let session = ActiveSession {
            id,
            tenant_hash: tenant_id(&cfg.name),
            trace: cfg.trace,
            name: cfg.name,
            lifeguard_kind: cfg.lifeguard,
            lifeguard,
            pipeline,
            consumer,
            done: done_tx,
            opened: Instant::now(),
            cost: CostSink::new(),
            events: EventBuf::new(),
            records: 0,
            violations: Vec::new(),
            violation_records: Vec::new(),
            home: Arc::clone(&home),
            dispatch_hist: self.shared.dispatch_hists[kind_index].clone(),
            journal_counter: self.shared.journal_counters[kind_index].clone(),
            pipeline_mode: self.pipeline_mode,
            epoch_cfg: self.epoch_cfg,
            hot_turns: 0,
            carried_budget: None,
            pipe: None,
        };
        self.shared.stats.sessions_opened.inc();
        self.shared.shards[shard].push(session);
        self.shared.ring_all();
        // The session is its own span origin for frames sent through the
        // handle: a fresh flow, a frame counter, a per-frame sampler.
        let spans = self.shared.recorder.as_ref().map(|r| SessionSpans {
            flow: alloc_flow(),
            next_frame: AtomicU64::new(0),
            sampler: r.sampler(),
        });
        SessionHandle {
            id,
            producer: Some(producer),
            shared: Arc::clone(&self.shared),
            done: done_rx,
            chunk_bytes: self.chunk_bytes,
            channel_capacity_bytes: self.channel_capacity_bytes,
            home,
            spans,
        }
    }

    /// Submits an epoch job to the shared injector queue; the next idle
    /// worker picks it up.
    pub(crate) fn submit_epoch(&self, job: EpochJob) {
        self.shared.submit_epoch(job);
    }

    /// Takes the pool-wide violation stream. Yields `Some` on the first
    /// call, `None` afterwards (single consumer).
    ///
    /// Workers forward violations into the stream only from the moment it
    /// is taken (earlier ones are still in their session's
    /// [`SessionReport::violations`]); take the stream before opening
    /// sessions to observe everything.
    pub fn violation_stream(&self) -> Option<ViolationStream> {
        let taken = self.violations_rx.lock().unwrap().take().map(|rx| ViolationStream { rx });
        if taken.is_some() {
            self.shared.stream_taken.store(true, Ordering::Relaxed);
        }
        taken
    }

    /// A point-in-time view of the pool's aggregate counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The metrics registry the pool reports into (its own unless one was
    /// passed via [`PoolConfig::metrics`]). Other subsystems register
    /// their metrics here to share the pool's stats endpoint.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The pool's structured lifecycle-event ring (session open/close,
    /// steals, violations — plus whatever other subsystems on the same
    /// registry record).
    pub fn events(&self) -> &EventRing {
        self.shared.metrics.events()
    }

    /// The span flight recorder following sampled frames through the
    /// pipeline (`None` when [`PoolConfig::spans`] is off). Hand it to
    /// `igm-net` endpoints (`attach_spans`) so wire-side stages land in
    /// the same recorder and join the pool-side chains.
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.shared.recorder.as_ref()
    }

    /// Starts a [`StatsServer`] on `addr` serving this pool's registry:
    /// `GET /metrics` (Prometheus text), `/stats.json`, `/events.json`,
    /// plus `/spans.json` and `/trace` when the pool has a span recorder.
    /// Bind port 0 to let the OS pick; the server stops on drop.
    pub fn serve_stats(&self, addr: impl ToSocketAddrs) -> std::io::Result<StatsServer> {
        StatsServer::serve_with(
            addr,
            Arc::clone(&self.shared.metrics),
            self.shared.recorder.clone(),
        )
    }

    /// Like [`MonitorPool::serve_stats`], but additionally mounts custom
    /// [`RouteHandler`]s (e.g. a trace lake's `/lake/*` routes) alongside
    /// the built-in endpoints.
    pub fn serve_stats_routes(
        &self,
        addr: impl ToSocketAddrs,
        routes: Vec<Arc<dyn RouteHandler>>,
    ) -> std::io::Result<StatsServer> {
        StatsServer::serve_routes(
            addr,
            Arc::clone(&self.shared.metrics),
            self.shared.recorder.clone(),
            routes,
        )
    }

    /// Stops the workers and joins the threads; called implicitly on drop.
    ///
    /// Sessions whose producers already finished are finalized normally.
    /// A session whose [`SessionHandle`] is still live is *terminated*:
    /// buffered batches are drained, the session is finalized, and further
    /// `send_batch` calls on the handle fail with [`SendError`] — shutdown
    /// never deadlocks waiting on a producer that will not close.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ring_all();
        for join in self.joins.drain(..) {
            if join.join().is_err() {
                eprintln!("igm-runtime: a lifeguard worker panicked");
            }
        }
    }
}

impl Drop for MonitorPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Producer-side handle for one tenant session.
///
/// Dropping the handle without [`SessionHandle::finish`] closes the log
/// channel; the owning worker still drains buffered records and finalizes
/// the session, but the report is discarded.
pub struct SessionHandle {
    id: SessionId,
    producer: Option<LogProducer>,
    shared: Arc<PoolShared>,
    done: Receiver<SessionReport>,
    chunk_bytes: u32,
    channel_capacity_bytes: u32,
    /// The worker currently hosting the session (sticky-wakeup hint).
    home: Arc<AtomicUsize>,
    /// Span origin for frames this handle publishes (`None` when the
    /// pool's spans are off).
    spans: Option<SessionSpans>,
}

/// Per-session span origin: the flow id, the frame counter, and the
/// once-per-frame sampling decision.
struct SessionSpans {
    flow: u32,
    next_frame: AtomicU64,
    sampler: Sampler,
}

impl SessionSpans {
    /// Advances the frame counter (every frame gets an ordinal) and tags
    /// the sampled minority.
    fn tag_frame(&self) -> Option<FrameTag> {
        let seq = self.next_frame.fetch_add(1, Ordering::Relaxed);
        self.sampler.sample().then_some(FrameTag { flow: self.flow, seq })
    }
}

impl SessionHandle {
    /// The session's pool-wide id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The pool's configured producer-side chunk size in compressed-record
    /// bytes (what [`SessionHandle::stream`] batches at).
    pub fn chunk_bytes(&self) -> u32 {
        self.chunk_bytes
    }

    /// The session's log-channel capacity in compressed-record bytes — the
    /// denominator of the occupancy accounting
    /// ([`SessionHandle::channel_stats`] `used_bytes` / this), which
    /// flow-controlled ingest front-ends (`igm-net`) turn into send
    /// credits for remote producers.
    pub fn channel_capacity_bytes(&self) -> u32 {
        self.channel_capacity_bytes
    }

    /// Publishes one pre-batched chunk of records (blocks on backpressure).
    /// Accepts anything convertible into a columnar [`TraceBatch`] (a
    /// `TraceBatch` moves through untouched; a `Vec<TraceEntry>` converts).
    /// Fails once the session is [`close`](SessionHandle::close)d or the
    /// pool has shut down under it.
    pub fn send_batch(&self, batch: impl Into<TraceBatch>) -> Result<(), SendError> {
        let batch = batch.into();
        let Some(producer) = self.producer.as_ref() else {
            return Err(SendError(Box::new(batch)));
        };
        let tag = self.spans.as_ref().and_then(SessionSpans::tag_frame);
        let r = producer.send_batch_tagged(batch, tag);
        self.shared.ring_worker(self.home.load(Ordering::Relaxed));
        r
    }

    /// Publishes one batch without blocking: `Ok(None)` on success,
    /// `Ok(Some(batch))` when the log channel is full (the caller retries
    /// later — the multiplexed-ingest backpressure path), `Err` once the
    /// session is closed or the pool has shut down under it.
    pub fn try_send_batch(
        &self,
        batch: impl Into<TraceBatch>,
    ) -> Result<Option<TraceBatch>, SendError> {
        self.try_send_batch_tagged(batch, None)
    }

    /// [`SessionHandle::try_send_batch`] carrying an explicit span tag
    /// stamped at the frame's origin (an `igm-net` lane forwarding a
    /// remote producer's tag): the wire tag wins, so a loopback waterfall
    /// joins client- and server-side stages under one flow. With no wire
    /// tag the session's own sampler decides, exactly as
    /// [`SessionHandle::try_send_batch`] does — frames the origin did not
    /// sample may still be sampled server-side under the session's flow.
    pub fn try_send_batch_tagged(
        &self,
        batch: impl Into<TraceBatch>,
        wire_tag: Option<FrameTag>,
    ) -> Result<Option<TraceBatch>, SendError> {
        let batch = batch.into();
        let Some(producer) = self.producer.as_ref() else {
            return Err(SendError(Box::new(batch)));
        };
        let tag = wire_tag.or_else(|| self.spans.as_ref().and_then(SessionSpans::tag_frame));
        let r = producer.try_send_batch_tagged(batch, tag);
        if let Ok(None) = r {
            self.shared.ring_worker(self.home.load(Ordering::Relaxed));
        }
        r
    }

    /// Streams a whole trace, batching it with [`igm_lba::chunks`] at the
    /// pool's configured chunk size. Chunks are built column-first into
    /// recycled batch arenas ([`SessionHandle::spare_batch`]), so a
    /// steady-state producer allocates nothing per chunk.
    pub fn stream(
        &self,
        trace: impl IntoIterator<Item = igm_isa::TraceEntry>,
    ) -> Result<(), SendError> {
        let mut chunker = chunks(trace, self.chunk_bytes);
        let mut batch = self.spare_batch();
        while chunker.next_into_batch(&mut batch) {
            let next = self.spare_batch();
            self.send_batch(std::mem::replace(&mut batch, next))?;
        }
        Ok(())
    }

    /// A recycled (or fresh) batch arena to fill for the next
    /// [`SessionHandle::send_batch`]: the consumer hands drained arenas
    /// back through the channel, so their column capacity circulates
    /// instead of being reallocated per chunk.
    pub fn spare_batch(&self) -> TraceBatch {
        self.producer.as_ref().map(LogProducer::spare).unwrap_or_default()
    }

    /// Transport counters for this session's log channel.
    ///
    /// # Panics
    ///
    /// Panics after [`SessionHandle::close`] (the final counters are in
    /// the [`SessionReport`]).
    pub fn channel_stats(&self) -> ChannelStatsSnapshot {
        self.producer.as_ref().expect("producer present until close/finish").stats()
    }

    /// Closes the log channel **without blocking**: the owning worker
    /// drains and finalizes the session in the background. Further sends
    /// fail; call [`SessionHandle::finish`] later to collect the report
    /// (it then only waits, the close already happened). Lets a
    /// multiplexing producer retire one tenant while it keeps feeding the
    /// others.
    pub fn close(&mut self) {
        drop(self.producer.take());
        self.shared.ring_all();
    }

    /// Closes the log channel and blocks until the owning worker has
    /// drained and finalized the session.
    pub fn finish(mut self) -> SessionReport {
        drop(self.producer.take()); // close the channel
        self.shared.ring_all();
        self.done
            .recv()
            .expect("session failed before finalize (lifeguard panic on this tenant; see stderr)")
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        // Close the channel (if finish() didn't already) and wake the
        // workers so an abandoned session is drained and finalized promptly
        // rather than on the park-timeout safety net.
        drop(self.producer.take());
        self.shared.ring_all();
    }
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

struct ActiveSession {
    id: SessionId,
    name: String,
    /// FNV hash of `name` — the tenant half of emitted [`RecordId`]s.
    tenant_hash: u32,
    /// Durable trace id ([`SessionConfig::trace`]; 0 = live-only).
    trace: u32,
    lifeguard_kind: LifeguardKind,
    lifeguard: AnyLifeguard,
    pipeline: DispatchPipeline,
    consumer: LogConsumer,
    done: Sender<SessionReport>,
    opened: Instant,
    cost: CostSink,
    events: EventBuf,
    records: u64,
    violations: Vec<Violation>,
    /// Parallel to `violations`: each entry's attributed record id.
    violation_records: Vec<Option<RecordId>>,
    /// Shared with the [`SessionHandle`]: which worker's deque the session
    /// currently lives on, so producer-side wakeups ring the owner first.
    home: Arc<AtomicUsize>,
    /// This session's kind's `igm_dispatch_batch_nanos{lifeguard=…}`.
    dispatch_hist: Histogram,
    /// This session's kind's `igm_epoch_journal_checks_total{lifeguard=…}`.
    journal_counter: Counter,
    /// Pool-level pipelining policy (copied from [`PoolConfig`]).
    pipeline_mode: PipelineMode,
    /// Epoch sizing for pipelined stretches (copied from [`PoolConfig`]).
    epoch_cfg: EpochConfig,
    /// Consecutive pump turns the log channel was at least half full (the
    /// [`PipelineMode::Auto`] trigger).
    hot_turns: u32,
    /// Last adaptive budget of the previous pipelined stretch, re-clamped
    /// on re-entry so a hot phase resumes near where it left off.
    carried_budget: Option<usize>,
    /// Live pipelining state (`Some` while the session is pipelined).
    pipe: Option<Box<PipelineState>>,
}

/// Per-session state while intra-session epoch pipelining is engaged.
struct PipelineState {
    /// Shadow state at the current epoch boundary (cloned when the
    /// previous epoch shipped); the next job replays against it.
    snapshot: AnyLifeguard,
    /// Accelerator/dispatch state at the same boundary: replaying the
    /// identical batch stream through this clone delivers exactly the
    /// events the live spine pipeline delivered.
    snapshot_pipeline: DispatchPipeline,
    /// Record batches accumulated into the current epoch; they travel with
    /// the job and the result hands them back for recycling.
    acc: Vec<TraceBatch>,
    acc_records: usize,
    /// Check events the accumulating epoch delivered (adaptive feedback).
    acc_checks: u64,
    /// Records accepted but not yet emitted (mirrors the pool-wide
    /// `igm_epoch_backlog_records` contribution of this session).
    backlog: i64,
    budget: usize,
    max_in_flight: usize,
    next_index: usize,
    next_emit: usize,
    in_flight: usize,
    /// Results that arrived out of epoch order, held until their turn.
    pending: BTreeMap<usize, EpochResult>,
    tx: Sender<EpochResult>,
    rx: Receiver<EpochResult>,
    /// Reusable staging buffer for the spine's non-elided events.
    updates: Vec<igm_lba::DeliveredEvent>,
}

impl ActiveSession {
    /// Processes up to `max_batches` buffered batches; returns how many
    /// units of progress were made (batches pumped plus epoch results
    /// drained). `stats` is the pumping worker's stripe-sharded counter
    /// clone; `worker`/`ring` are the pumping worker's index and its
    /// flight-recorder ring.
    fn pump(
        &mut self,
        max_batches: usize,
        shared: &PoolShared,
        stats: &PoolStats,
        worker: usize,
        ring: usize,
    ) -> usize {
        if self.pipe.is_none() && self.should_enter_pipeline() {
            self.enter_pipeline(shared);
        }
        if self.pipe.is_some() {
            self.pump_pipelined(max_batches, shared, stats)
        } else {
            self.pump_plain(max_batches, shared, stats, worker, ring)
        }
    }

    /// Whether this pump turn should switch the session to the pipelined
    /// path. Advances the [`PipelineMode::Auto`] hot-turn counter as a side
    /// effect.
    fn should_enter_pipeline(&mut self) -> bool {
        match self.pipeline_mode {
            PipelineMode::Never => false,
            PipelineMode::Always => true,
            PipelineMode::Auto => {
                // Pipelining pays off only when the spine can elide work;
                // a full-stream spine (LockSet) would just add replay on
                // top of itself.
                if !self.lifeguard_kind.spine_elides_any() {
                    return false;
                }
                let used = u64::from(self.consumer.used_bytes());
                let cap = u64::from(self.consumer.capacity_bytes());
                if used * 2 >= cap {
                    self.hot_turns += 1;
                } else {
                    self.hot_turns = 0;
                }
                self.hot_turns >= HOT_TURNS_TO_PIPELINE
            }
        }
    }

    fn enter_pipeline(&mut self, shared: &PoolShared) {
        let budget = match self.carried_budget {
            // Re-entry: the carried budget must honor the configuration's
            // clamp from the very first epoch of the new stretch.
            Some(b) => self.epoch_cfg.clamp_budget(b),
            None => self.epoch_cfg.initial_budget(),
        };
        let (tx, rx) = mpsc::channel();
        self.pipe = Some(Box::new(PipelineState {
            snapshot: self.lifeguard.clone(),
            snapshot_pipeline: self.pipeline.clone(),
            acc: Vec::new(),
            acc_records: 0,
            acc_checks: 0,
            backlog: 0,
            budget,
            // Bound outstanding jobs like the standalone epoch driver
            // does; past the cap the spine stops draining the channel and
            // the bounded channel pushes back on the producer.
            max_in_flight: 2 * shared.shards.len() + 1,
            next_index: 0,
            next_emit: 0,
            in_flight: 0,
            pending: BTreeMap::new(),
            tx,
            rx,
            updates: Vec::new(),
        }));
        self.hot_turns = 0;
        shared.pipeline_active.add(1);
        shared
            .metrics
            .events()
            .record(EventKind::PipelineEnter { session: self.id, tenant: self.name.clone() });
    }

    fn exit_pipeline(&mut self, shared: &PoolShared) {
        let pipe = self.pipe.take().expect("exit_pipeline on a non-pipelined session");
        debug_assert_eq!(pipe.backlog, 0, "exited with unemitted records");
        self.carried_budget = Some(pipe.budget);
        self.hot_turns = 0;
        shared.pipeline_active.sub(1);
        shared.metrics.events().record(EventKind::PipelineExit {
            session: self.id,
            tenant: self.name.clone(),
            epochs: pipe.next_index as u64,
        });
    }

    /// The pipelined pump: update-only spine + epoch job fan-out. Never
    /// blocks on results — with one worker, this same thread must return
    /// to the injector queue to run the jobs it shipped.
    fn pump_pipelined(
        &mut self,
        max_batches: usize,
        shared: &PoolShared,
        stats: &PoolStats,
    ) -> usize {
        let mut progress = usize::from(self.drain_epoch_results(shared, stats));
        let mut processed = 0;
        while processed < max_batches {
            {
                let pipe = self.pipe.as_ref().expect("pipelined pump without state");
                // Job window full with a whole epoch already accumulated:
                // stop draining and let the bounded channel backpressure
                // the producer while the workers catch up.
                if pipe.in_flight >= pipe.max_in_flight && pipe.acc_records >= pipe.budget {
                    break;
                }
            }
            let Some((batch, _published, _tag)) = self.consumer.try_recv_batch_tagged() else {
                break;
            };
            processed += 1;
            self.records += batch.len() as u64;
            stats.records.add(batch.len() as u64);
            // Live dispatch: the spine's pipeline sees every batch, so the
            // session's DispatchStats equal sequential monitoring exactly.
            self.pipeline.dispatch_batch(&batch, &mut self.events);
            let pipe = self.pipe.as_mut().expect("pipelined pump without state");
            pipe.updates.clear();
            let mut elided = 0u64;
            let mut checks = 0u64;
            for ev in self.events.events() {
                if crate::epoch::is_check_event(&ev.event) {
                    checks += 1;
                }
                if self.lifeguard_kind.spine_elides(&ev.event) {
                    elided += 1;
                } else {
                    pipe.updates.push(*ev);
                }
            }
            pipe.acc_checks += checks;
            self.journal_counter.add(elided);
            self.cost.clear();
            self.lifeguard.handle_batch(&pipe.updates, &mut self.cost);
            // Spine-side reports are duplicates of what the epoch job
            // derives with exact boundary state; the job is authoritative.
            let _ = self.lifeguard.take_violations();
            pipe.acc_records += batch.len();
            pipe.backlog += batch.len() as i64;
            shared.epoch_backlog.add(batch.len() as i64);
            pipe.acc.push(batch);
            if pipe.acc_records >= pipe.budget && pipe.in_flight < pipe.max_in_flight {
                self.ship_epoch(shared);
            }
            if self.drain_epoch_results(shared, stats) {
                progress += 1;
            }
        }
        // Backlog drained at the source: flush the partial epoch, and once
        // every shipped job has reported and been emitted in order, drop
        // back to plain pumping.
        if self.consumer.pending_batches() == 0 {
            {
                let pipe = self.pipe.as_ref().expect("pipelined pump without state");
                if !pipe.acc.is_empty() && pipe.in_flight < pipe.max_in_flight {
                    self.ship_epoch(shared);
                }
            }
            if self.drain_epoch_results(shared, stats) {
                progress += 1;
            }
            let pipe = self.pipe.as_ref().expect("pipelined pump without state");
            if pipe.acc.is_empty() && pipe.in_flight == 0 && pipe.pending.is_empty() {
                self.exit_pipeline(shared);
            }
        }
        processed + progress
    }

    /// Ships the accumulated epoch as an [`EpochJob`] and re-snapshots the
    /// spine at the new boundary.
    fn ship_epoch(&mut self, shared: &PoolShared) {
        let pipe = self.pipe.as_mut().expect("ship_epoch on a non-pipelined session");
        if pipe.acc.is_empty() {
            return;
        }
        let snapshot = std::mem::replace(&mut pipe.snapshot, self.lifeguard.clone());
        let snapshot_pipeline =
            std::mem::replace(&mut pipe.snapshot_pipeline, self.pipeline.clone());
        let job = EpochJob {
            index: pipe.next_index,
            lifeguard: snapshot,
            pipeline: snapshot_pipeline,
            // The live spine already counted the accumulated records, so
            // the epoch's first record sits acc_records behind the total.
            first_record: self.records - pipe.acc_records as u64,
            records: std::mem::take(&mut pipe.acc),
            done: pipe.tx.clone(),
            pipelined: Some(Arc::clone(&self.home)),
        };
        pipe.next_index += 1;
        pipe.in_flight += 1;
        // Adaptive re-budget from the shipped epoch's check density (a
        // no-op under fixed sizing).
        pipe.budget = self.epoch_cfg.next_budget(pipe.acc_records, pipe.acc_checks);
        pipe.acc_records = 0;
        pipe.acc_checks = 0;
        shared.submit_epoch(job);
    }

    /// Collects finished epoch results without blocking and emits the
    /// in-order prefix: violations flow to the stream/event ring exactly
    /// as plain pumping forwards them, and the drained arenas recycle into
    /// the session's spare pool. Returns whether anything was emitted.
    fn drain_epoch_results(&mut self, shared: &PoolShared, stats: &PoolStats) -> bool {
        let Some(pipe) = self.pipe.as_mut() else { return false };
        let mut emitted_any = false;
        while let Ok(r) = pipe.rx.try_recv() {
            pipe.in_flight -= 1;
            pipe.pending.insert(r.index, r);
        }
        while let Some(mut r) = pipe.pending.remove(&pipe.next_emit) {
            pipe.next_emit += 1;
            emitted_any = true;
            if r.failed {
                // Settle the backlog gauge, then let pump_owned's panic
                // isolation drop the session: emitting a truncated
                // violation sequence would be worse than losing the
                // session.
                shared.epoch_backlog.sub(pipe.backlog);
                pipe.backlog = 0;
                panic!("epoch job {} failed (lifeguard panic)", r.index);
            }
            let emitted: i64 = r.records.iter().map(|b| b.len() as i64).sum();
            pipe.backlog -= emitted;
            shared.epoch_backlog.sub(emitted);
            // Attribute record ids against the epoch's batches before
            // they recycle (the job echoed its first global sequence).
            let ids: Vec<Option<RecordId>> = r
                .violations
                .iter()
                .map(|v| {
                    attribute_violation(v, &r.records, r.first_record, self.tenant_hash, self.trace)
                })
                .collect();
            for batch in r.records.drain(..) {
                self.consumer.recycle(batch);
            }
            if r.violations.is_empty() {
                continue;
            }
            stats.violations.add(r.violations.len() as u64);
            if shared.stream_taken.load(Ordering::Relaxed) {
                for (v, id) in r.violations.iter().zip(&ids) {
                    let _ = shared.violations_tx.send(PoolViolation {
                        session: self.id,
                        tenant: self.name.clone(),
                        lifeguard: self.lifeguard_kind,
                        record: *id,
                        violation: *v,
                    });
                }
            }
            for (v, id) in r.violations.iter().zip(&ids) {
                shared.metrics.events().record(EventKind::Violation {
                    session: self.id,
                    tenant: self.name.clone(),
                    detail: v.to_string(),
                    record: *id,
                    spans: Vec::new(),
                });
            }
            self.violations.extend(r.violations);
            self.violation_records.extend(ids);
        }
        emitted_any
    }

    /// The plain (non-pipelined) batch-grain hot path.
    fn pump_plain(
        &mut self,
        max_batches: usize,
        shared: &PoolShared,
        stats: &PoolStats,
        worker: usize,
        ring: usize,
    ) -> usize {
        let mut processed = 0;
        while processed < max_batches {
            let Some((batch, published, tag)) = self.consumer.try_recv_batch_tagged() else {
                break;
            };
            processed += 1;
            // Global sequence of this batch's first record — violation
            // record ids are attributed against it below.
            let base_seq = self.records;
            self.records += batch.len() as u64;
            // Span stamps only for the sampled minority that carries a
            // tag: the untagged hot path pays one branch here.
            let span = match (&shared.recorder, tag) {
                (Some(rec), Some(tag)) => {
                    let track = Track::Worker(worker as u32);
                    let picked_up = rec.now();
                    // The publish instant rode the queue with the tag;
                    // the wait is publish → this pickup.
                    let t_publish = published.map_or(picked_up, |at| rec.stamp(at));
                    rec.record(ring, Stage::ChannelWait, track, tag, t_publish, picked_up);
                    shared.span_hists.channel_wait.record(picked_up.saturating_sub(t_publish));
                    Some((rec, tag, track, picked_up))
                }
                _ => None,
            };
            // One columnar pipeline pass and one statically-dispatched
            // handler pass per chunk; `events` and the pipeline's staging
            // buffers are reused across batches (no per-record allocation —
            // including the latency observation: two relaxed fetch_adds).
            let t0 = self.dispatch_hist.start();
            self.pipeline.dispatch_batch(&batch, &mut self.events);
            self.cost.clear();
            self.lifeguard.handle_batch(self.events.events(), &mut self.cost);
            self.dispatch_hist.stop(t0);
            if let Some((rec, tag, track, t_dispatch)) = span {
                let done = rec.now();
                rec.record(ring, Stage::Dispatch, track, tag, t_dispatch, done);
                shared.span_hists.dispatch.record(done.saturating_sub(t_dispatch));
            }
            stats.records.add(batch.len() as u64);
            let fresh = self.lifeguard.take_violations();
            if !fresh.is_empty() {
                stats.violations.add(fresh.len() as u64);
                // Attribute record ids while the faulting batch is still
                // in hand (it recycles right after this block).
                let ids: Vec<Option<RecordId>> = fresh
                    .iter()
                    .map(|v| {
                        attribute_violation(
                            v,
                            std::slice::from_ref(&batch),
                            base_seq,
                            self.tenant_hash,
                            self.trace,
                        )
                    })
                    .collect();
                // A sampled frame that just violated gets a `violation`
                // marker record, then its whole completed chain is
                // snapshotted into the event-ring entry below.
                let spans = match span {
                    Some((rec, tag, track, _)) => {
                        let now = rec.now();
                        rec.record(ring, Stage::Violation, track, tag, now, now);
                        rec.chain(tag)
                    }
                    None => Vec::new(),
                };
                // Forward to the aggregated stream only once someone holds
                // it; otherwise an untaken stream would buffer violations
                // unboundedly for the pool's lifetime. (They are always
                // retained in the session report below.)
                if shared.stream_taken.load(Ordering::Relaxed) {
                    for (v, id) in fresh.iter().zip(&ids) {
                        let _ = shared.violations_tx.send(PoolViolation {
                            session: self.id,
                            tenant: self.name.clone(),
                            lifeguard: self.lifeguard_kind,
                            record: *id,
                            violation: *v,
                        });
                    }
                }
                // Violations are rare enough to narrate in the event ring
                // (the allocation here is off the zero-violation hot path).
                for (v, id) in fresh.iter().zip(&ids) {
                    shared.metrics.events().record(EventKind::Violation {
                        session: self.id,
                        tenant: self.name.clone(),
                        detail: v.to_string(),
                        record: *id,
                        spans: spans.clone(),
                    });
                }
                self.violations.extend(fresh);
                self.violation_records.extend(ids);
            }
            // Hand the drained arena back to the producer side for refill.
            self.consumer.recycle(batch);
        }
        processed
    }

    /// Whether buffered batches are waiting (the steal heuristic).
    fn has_pending(&self) -> bool {
        self.consumer.pending_batches() > 0
    }

    fn finished(&self) -> bool {
        // A pipelined session still owes its in-flight epochs' violations;
        // it finalizes only after the drain path exited the pipeline.
        self.consumer.is_drained() && self.pipe.is_none()
    }

    fn finalize(mut self, stats: &PoolStats, shared: &PoolShared) {
        let events = shared.metrics.events();
        // Termination can finalize a still-pipelined session (shutdown
        // terminates; in-flight epochs are abandoned): settle the gauges.
        if let Some(pipe) = self.pipe.take() {
            shared.pipeline_active.sub(1);
            shared.epoch_backlog.sub(pipe.backlog);
        }
        // Flush any violations reported after the last pump (none today,
        // but harmless and future-proof against buffering handlers).
        self.violations.extend(self.lifeguard.take_violations());
        // End-of-run violations (leaks) have no faulting record.
        self.violation_records.resize(self.violations.len(), None);
        stats.sessions_closed.inc();
        stats.events_delivered.add(self.pipeline.stats().delivered);
        events.record(EventKind::SessionClose {
            session: self.id,
            tenant: self.name.clone(),
            records: self.records,
            violations: self.violations.len() as u64,
        });
        let report = SessionReport {
            id: self.id,
            name: self.name.clone(),
            lifeguard: self.lifeguard_kind,
            records: self.records,
            dispatch: self.pipeline.stats().clone(),
            violations: self.violations,
            violation_records: self.violation_records,
            metadata_bytes: self.lifeguard.metadata_bytes(),
            channel: self.consumer.stats(),
            wall: self.opened.elapsed(),
        };
        // The handle may have been dropped; the report is then discarded.
        let _ = self.done.send(report);
    }
}

/// Batches one worker processes from a session before rotating to the next
/// (fairness bound).
const BATCHES_PER_TURN: usize = 4;

/// Consecutive pump turns a session's log channel must be at least half
/// full before [`PipelineMode::Auto`] switches it to the pipelined path —
/// long enough that one bursty chunk train does not pay the snapshot cost,
/// short enough that a genuinely hot tenant pipelines within a few turns.
const HOT_TURNS_TO_PIPELINE: u32 = 3;

/// How long an idle worker parks before re-polling anyway. Every
/// producer-side state change rings the doorbell, so this is only a safety
/// net and can be generous without adding latency.
const PARK_TIMEOUT: Duration = Duration::from_millis(25);

/// Empty passes a worker yields through before parking on the doorbell.
/// Briefly-idle workers (their session's producer is mid-chunk) resume
/// without a futex round trip per batch; genuinely idle workers still park.
const SPIN_PASSES: u32 = 8;

/// Per-worker staging buffers for epoch jobs, allocated once per worker
/// thread and reused across every job it serves (ROADMAP batch-path
/// follow-on: no per-job `CostSink`/`EventBuf` reallocation).
#[derive(Default)]
struct EpochScratch {
    cost: CostSink,
    events: EventBuf,
}

fn worker_main(idx: usize, shared: Arc<PoolShared>) {
    let mut idle_passes = 0u32;
    let mut scratch = EpochScratch::default();
    // This worker's counter clone: every handle claims its own stripe, so
    // the hot-path increments below never share a cache line with another
    // worker's.
    let stats = shared.stats.per_worker();
    // This worker's flight-recorder ring: claimed once, single-writer for
    // the thread's lifetime (0 is a dead value when spans are off).
    let ring = shared.recorder.as_ref().map_or(0, |r| r.ring_handle());
    loop {
        let seen = shared.doorbells[idx].epoch();
        let terminating = shared.shutdown.load(Ordering::Acquire);
        let mut progress = false;

        // At most one epoch job per pass, so a deep injector queue cannot
        // starve resident session traffic. The atomic mirror keeps the
        // injector lock off the session hot path.
        if shared.epoch_pending.load(Ordering::SeqCst) > 0 {
            let job = shared.epoch_jobs.lock().unwrap().pop_front();
            if let Some(job) = job {
                shared.epoch_pending.fetch_sub(1, Ordering::SeqCst);
                run_epoch_job_guarded(job, &stats, &shared, idx, ring, &mut scratch);
                progress = true;
            }
        }

        // One rotation over this worker's resident sessions. Each session
        // is popped for the duration of its pump — a checked-out session is
        // invisible to thieves, which is what keeps ownership exclusive.
        let resident = shared.shards[idx].resident();
        for _ in 0..resident {
            let Some(session) = shared.shards[idx].pop() else { break };
            progress |= pump_owned(idx, ring, session, &shared, &stats, terminating);
        }

        // Nothing of our own to do: steal a runnable session — with its
        // pending batches and its shadow shard — from a loaded worker.
        if !progress && !terminating {
            if let Some((session, victim)) = steal(idx, &shared) {
                stats.steals.inc();
                shared.metrics.events().record(EventKind::Steal {
                    session: session.id,
                    from_worker: victim,
                    to_worker: idx,
                });
                pump_owned(idx, ring, session, &shared, &stats, terminating);
                progress = true;
            }
        }

        if terminating
            && shared.shards[idx].resident() == 0
            && shared.epoch_pending.load(Ordering::SeqCst) == 0
        {
            return;
        }
        if progress {
            idle_passes = 0;
        } else {
            idle_passes += 1;
            if idle_passes <= SPIN_PASSES {
                std::thread::yield_now();
            } else {
                stats.parks.inc();
                shared.doorbells[idx].wait(seen, PARK_TIMEOUT);
            }
        }
    }
}

/// Pumps a checked-out session and settles its ownership: finalized if
/// drained (or the pool is terminating), re-queued on this worker's deque
/// otherwise, dropped if its lifeguard panicked. Returns whether any batch
/// was processed.
fn pump_owned(
    idx: usize,
    ring: usize,
    mut session: ActiveSession,
    shared: &PoolShared,
    stats: &PoolStats,
    terminate: bool,
) -> bool {
    // This worker owns the session for the pump (and keeps it if it is
    // re-queued below): point producer-side wakeups here.
    session.home.store(idx, Ordering::Relaxed);
    // Panic isolation: one tenant's handler panicking must not take down
    // the other sessions of the pool.
    let pumped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.pump(BATCHES_PER_TURN, shared, stats, idx, ring)
    }));
    match pumped {
        Ok(n) => {
            // When terminating, finalize unconditionally after one last
            // pump: shutdown *terminates*. An actively streaming producer
            // observes `SendError` once the consumer drops (records it had
            // buffered beyond this turn are lost); waiting for it to drain
            // could block for the producer's whole lifetime.
            if session.finished() || terminate {
                session.finalize(stats, shared);
            } else {
                shared.shards[idx].push(session);
            }
            n > 0
        }
        Err(_) => {
            eprintln!(
                "igm-runtime: lifeguard panicked in session {} ({}); session dropped",
                session.id, session.name
            );
            // Dropping the session closes the channel (producer sees
            // SendError) and the report sender (finish() reports the
            // failure); the other sessions keep running.
            true
        }
    }
}

/// Scans the other workers' deques for a session with pending batches and
/// takes the most recently queued one.
fn steal(idx: usize, shared: &PoolShared) -> Option<(ActiveSession, usize)> {
    let n = shared.shards.len();
    for off in 1..n {
        let victim = (idx + off) % n;
        if let Some(session) = shared.shards[victim].steal_runnable() {
            return Some((session, victim));
        }
    }
    None
}

/// Runs an epoch job, containing panics to the job: a panicking handler
/// reports an explicit failed [`EpochResult`], which the epoch driver
/// surfaces instead of emitting a truncated violation set.
fn run_epoch_job_guarded(
    job: EpochJob,
    stats: &PoolStats,
    shared: &PoolShared,
    worker: usize,
    ring: usize,
    scratch: &mut EpochScratch,
) {
    let index = job.index;
    let done = job.done.clone();
    let pipelined = job.pipelined.clone();
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_epoch_job(job, stats, shared, worker, ring, scratch)
    }))
    .is_err()
    {
        eprintln!("igm-runtime: lifeguard panicked in epoch job {index}; epoch dropped");
        // The scratch buffers only ever hold plain values (no invariants
        // to restore); clear them so the next job starts clean.
        scratch.cost.clear();
        let _ = done.send(EpochResult {
            index,
            violations: Vec::new(),
            first_record: 0,
            delivered: 0,
            records: Vec::new(),
            failed: true,
        });
        if let Some(home) = &pipelined {
            shared.ring_worker(home.load(Ordering::Relaxed));
        }
    }
}

/// Attributes a violation to a global record id: the first record across
/// `batches` (starting at global sequence `base`) whose pc matches the
/// violation's. Best-effort by design — a violation without a pc (leak)
/// or whose pc left the batch window yields `None`, and a pc executed
/// several times in the window anchors to its first occurrence (the
/// neighborhood replay around the id recovers the exact one).
fn attribute_violation(
    v: &Violation,
    batches: &[TraceBatch],
    base: u64,
    tenant: u32,
    trace: u32,
) -> Option<RecordId> {
    let pc = v.pc()?;
    let mut offset = base;
    for b in batches {
        if let Some(i) = b.pcs().iter().position(|&p| p == pc) {
            return Some(RecordId::new(tenant, trace, offset + i as u64));
        }
        offset += b.len() as u64;
    }
    None
}

/// The shared batched pump: one columnar dispatch pass and one handler
/// pass over `records`, staging buffers reused, cost cleared per call.
/// Epoch jobs sweep their batches through here and shrink the worker's
/// staging retention afterwards ([`run_epoch_job`]).
pub(crate) fn pump_records(
    pipeline: &mut DispatchPipeline,
    lifeguard: &mut AnyLifeguard,
    cost: &mut CostSink,
    events: &mut EventBuf,
    records: &TraceBatch,
) {
    pipeline.dispatch_batch(records, events);
    cost.clear();
    lifeguard.handle_batch(events.events(), cost);
}

/// Event-buffer capacity an epoch worker keeps between jobs. An epoch is
/// dispatched in one whole-batch column sweep, so the staging buffer
/// reaches epoch grain — a few events per record. The bound is sized so a
/// default-budget epoch ([`crate::epoch::DEFAULT_EPOCH_RECORDS`] records)
/// always fits and its capacity is reused job after job with no
/// shrink/regrow churn; only the outsized epochs of an adaptive run near
/// its `max` budget trigger a shrink, so one outlier does not pin
/// megabytes per worker for the worker's lifetime.
const EPOCH_SCRATCH_RETAIN_EVENTS: usize = 4 * crate::epoch::DEFAULT_EPOCH_RECORDS;
/// Record-boundary capacity retained alongside (one slot per record).
const EPOCH_SCRATCH_RETAIN_RECORDS: usize = 2 * crate::epoch::DEFAULT_EPOCH_RECORDS;

fn run_epoch_job(
    mut job: EpochJob,
    stats: &PoolStats,
    shared: &PoolShared,
    worker: usize,
    ring: usize,
    scratch: &mut EpochScratch,
) {
    // Epoch jobs carry no producer frame tag, so sampled jobs chain
    // under the pool's epoch flow, keyed by job index.
    let span = match (&shared.recorder, &shared.epoch_span) {
        (Some(rec), Some(es)) if es.sampler.sample() => {
            Some((rec, FrameTag { flow: es.flow, seq: job.index as u64 }, rec.now()))
        }
        _ => None,
    };
    // Staging buffers come from the worker's persistent scratch — one
    // allocation per worker lifetime in steady state. Replaying batch by
    // batch (instead of one concatenated sweep) keeps handler semantics
    // identical to the spine's per-batch passes; pipeline state carries
    // across the calls exactly as it did on the live spine.
    let t0 = shared.epoch_hist.start();
    for records in &job.records {
        pump_records(
            &mut job.pipeline,
            &mut job.lifeguard,
            &mut scratch.cost,
            &mut scratch.events,
            records,
        );
    }
    shared.epoch_hist.stop(t0);
    if let Some((rec, tag, t_start)) = span {
        let done = rec.now();
        rec.record(ring, Stage::EpochJob, Track::Worker(worker as u32), tag, t_start, done);
        shared.span_hists.epoch_job.record(done.saturating_sub(t_start));
    }
    if scratch.events.capacity() > EPOCH_SCRATCH_RETAIN_EVENTS {
        scratch.events.shrink_to(EPOCH_SCRATCH_RETAIN_EVENTS, EPOCH_SCRATCH_RETAIN_RECORDS);
    }
    let violations = job.lifeguard.take_violations();
    // Pipelined jobs re-run records the session's live spine already
    // accounted; only standalone epoch-driver jobs add to the pool totals.
    if job.pipelined.is_none() {
        stats.records.add(job.records.iter().map(|b| b.len() as u64).sum());
        stats.events_delivered.add(job.pipeline.stats().delivered);
        stats.violations.add(violations.len() as u64);
    }
    stats.epoch_jobs.inc();
    let delivered = job.pipeline.stats().delivered;
    let _ = job.done.send(EpochResult {
        index: job.index,
        violations,
        first_record: job.first_record,
        delivered,
        records: job.records,
        failed: false,
    });
    if let Some(home) = &job.pipelined {
        shared.ring_worker(home.load(Ordering::Relaxed));
    }
}
