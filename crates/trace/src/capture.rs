//! On-disk capture and replay of live monitoring sessions.
//!
//! [`CaptureSession`] tees every batch a tenant publishes into a
//! [`TraceWriter`] frame *and* into the live [`MonitorPool`] session, so
//! the file records exactly the batch sequence the pool consumed — one
//! frame per transport chunk. [`replay_reader`] feeds such a file back
//! through a fresh pool session chunk-for-chunk; because the runtime's
//! dispatch path is deterministic in the record stream (batch boundaries
//! are semantically inert — see `tests/batch_equivalence.rs`), the replay
//! reproduces the live run's violations and [`DispatchStats`] exactly.
//!
//! [`DispatchStats`]: igm_core::DispatchStats

use crate::codec::{TraceError, TraceReader, TraceWriter};
use igm_isa::TraceEntry;
use igm_lba::{chunks, TraceBatch};
use igm_runtime::{MonitorPool, SendError, SessionConfig, SessionHandle, SessionReport};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from a capture or replay session.
#[derive(Debug)]
pub enum CaptureError {
    /// Encoding or decoding the trace stream failed.
    Trace(TraceError),
    /// The pool rejected records (it was shut down under the session).
    Closed,
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Trace(e) => write!(f, "capture trace error: {e}"),
            CaptureError::Closed => write!(f, "monitor pool closed under the session"),
        }
    }
}

impl std::error::Error for CaptureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureError::Trace(e) => Some(e),
            CaptureError::Closed => None,
        }
    }
}

impl From<TraceError> for CaptureError {
    fn from(e: TraceError) -> CaptureError {
        CaptureError::Trace(e)
    }
}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> CaptureError {
        CaptureError::Trace(TraceError::Io(e))
    }
}

impl From<SendError> for CaptureError {
    fn from(_: SendError) -> CaptureError {
        CaptureError::Closed
    }
}

/// A live pool session whose record stream is simultaneously encoded to a
/// trace sink.
///
/// # Example
///
/// ```
/// use igm_lifeguards::LifeguardKind;
/// use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
/// use igm_trace::{replay_reader, CaptureSession, TraceReader};
/// use igm_workload::Benchmark;
///
/// let pool = MonitorPool::new(PoolConfig::with_workers(2));
/// let cfg = SessionConfig::new("gzip", LifeguardKind::AddrCheck)
///     .synthetic()
///     .premark(&Benchmark::Gzip.profile().premark_regions());
///
/// // Live run, teed to an in-memory "file".
/// let mut cap = CaptureSession::new(&pool, cfg.clone(), Vec::new()).unwrap();
/// cap.stream(Benchmark::Gzip.trace(2_000)).unwrap();
/// let (live, bytes) = cap.finish().unwrap();
///
/// // Replay reproduces the live run exactly.
/// let replayed =
///     replay_reader(&pool, cfg, &mut TraceReader::new(&bytes[..]).unwrap()).unwrap();
/// assert_eq!(live.records, replayed.records);
/// assert_eq!(live.violations, replayed.violations);
/// assert_eq!(live.dispatch, replayed.dispatch);
/// pool.shutdown();
/// ```
pub struct CaptureSession<W: Write> {
    session: SessionHandle,
    writer: TraceWriter<W>,
    chunk_bytes: u32,
    /// Where to save the `IGMX` sidecar on finish, when the writer was
    /// opened indexing (the lake-capture path).
    sidecar: Option<PathBuf>,
}

impl<W: Write> CaptureSession<W> {
    /// Opens a session on `pool` whose traffic is teed into `sink`.
    pub fn new(
        pool: &MonitorPool,
        cfg: SessionConfig,
        sink: W,
    ) -> Result<CaptureSession<W>, CaptureError> {
        let session = pool.open_session(cfg);
        let chunk_bytes = session.chunk_bytes();
        let mut writer = TraceWriter::new(sink)?;
        writer.attach_metrics(pool.metrics());
        Ok(CaptureSession { session, writer, chunk_bytes, sidecar: None })
    }

    /// Publishes one pre-batched columnar chunk: one trace frame encoded
    /// straight from the batch's columns, then the live send (blocking on
    /// pool backpressure). The frame is written first so the file never
    /// misses a batch the pool processed.
    pub fn send_batch(&mut self, batch: impl Into<TraceBatch>) -> Result<(), CaptureError> {
        let batch = batch.into();
        self.writer.write_chunk_batch(&batch)?;
        self.session.send_batch(batch)?;
        Ok(())
    }

    /// Streams a whole trace, batching at the pool's chunk size into
    /// recycled batch arenas.
    pub fn stream(
        &mut self,
        trace: impl IntoIterator<Item = TraceEntry>,
    ) -> Result<(), CaptureError> {
        let mut chunker = chunks(trace, self.chunk_bytes);
        let mut batch = self.session.spare_batch();
        while chunker.next_into_batch(&mut batch) {
            let next = self.session.spare_batch();
            self.send_batch(std::mem::replace(&mut batch, next))?;
        }
        Ok(())
    }

    /// The underlying live session.
    pub fn session(&self) -> &SessionHandle {
        &self.session
    }

    /// Closes both sides: flushes the trace sink (and, for a lake
    /// capture, saves the `IGMX` sidecar next to it), finishes the live
    /// session, and returns the session report together with the sink.
    pub fn finish(mut self) -> Result<(SessionReport, W), CaptureError> {
        let index = self.writer.take_index();
        let sink = self.writer.finish()?;
        if let (Some(index), Some(path)) = (index, self.sidecar) {
            index.save_file(path)?;
        }
        let report = self.session.finish();
        Ok((report, sink))
    }
}

/// Opens a capture session teeing to a buffered file at `path`.
pub fn capture_to_file(
    pool: &MonitorPool,
    cfg: SessionConfig,
    path: impl AsRef<Path>,
) -> Result<CaptureSession<BufWriter<File>>, CaptureError> {
    let file = File::create(path)?;
    CaptureSession::new(pool, cfg, BufWriter::new(file))
}

/// Restricts a tenant name to filesystem-safe characters so a lake stem
/// derives deterministically from the session name (shared convention
/// with the `igm-net` tee, which sanitizes the same way).
pub fn lake_stem(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect()
}

/// Opens a *lake* capture: the trace is written to `<dir>/<stem>.igmt`
/// with the posting index built inline
/// ([`TraceWriter::with_index`](crate::TraceWriter::with_index)), the
/// `IGMX` v2 sidecar is saved as `<dir>/<stem>.igmx` on finish, and the
/// session's durable trace id is set to
/// [`igm_span::trace_id`]`(stem)` — so every violation the session
/// attributes carries a [`igm_span::RecordId`] that a
/// `TraceLake` over `dir` can seek straight back into.
pub fn capture_to_lake(
    pool: &MonitorPool,
    mut cfg: SessionConfig,
    dir: impl AsRef<Path>,
) -> Result<CaptureSession<BufWriter<File>>, CaptureError> {
    let stem = lake_stem(&cfg.name);
    cfg.trace = igm_span::trace_id(&stem);
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let file = File::create(dir.join(format!("{stem}.igmt")))?;
    let session = pool.open_session(cfg);
    let chunk_bytes = session.chunk_bytes();
    let mut writer = TraceWriter::with_index(BufWriter::new(file))?;
    writer.attach_metrics(pool.metrics());
    Ok(CaptureSession {
        session,
        writer,
        chunk_bytes,
        sidecar: Some(dir.join(format!("{stem}.igmx"))),
    })
}

/// Replays a recorded trace through a fresh session on `pool`,
/// chunk-for-chunk as captured, and returns the session's report.
///
/// Replaying the file produced by a [`CaptureSession`] under the same
/// [`SessionConfig`] yields a report whose `violations` and `dispatch`
/// stats equal the live run's.
pub fn replay_reader<R: Read>(
    pool: &MonitorPool,
    cfg: SessionConfig,
    reader: &mut TraceReader<R>,
) -> Result<SessionReport, CaptureError> {
    let session = pool.open_session(cfg);
    reader.attach_metrics(pool.metrics());
    let mut chunk = TraceBatch::new();
    while reader.read_chunk_into_batch(&mut chunk)? {
        // Frames decode directly into the batch's columns; the channel
        // takes ownership of each batch, and the next one starts from a
        // recycled arena the worker handed back.
        let next = session.spare_batch();
        session.send_batch(std::mem::replace(&mut chunk, next))?;
    }
    Ok(session.finish())
}

/// Replays only the records in `range` (0-based record numbers over the
/// whole trace) through a fresh session on `pool`, using `index` to seek
/// straight to the first frame the window touches — the prefix is never
/// decoded. Frames decode independently (delta streams reset per frame),
/// so this is exact; edge frames are trimmed to the window.
///
/// A window replay observes the records without their prefix, so lifeguard
/// state (and therefore violations) can differ from the same range inside
/// a full replay — this is an inspection tool, not a determinism claim.
/// Record numbers past the end of the trace are simply absent.
pub fn replay_window<R: Read + io::Seek>(
    pool: &MonitorPool,
    cfg: SessionConfig,
    reader: &mut TraceReader<R>,
    index: &crate::index::TraceIndex,
    range: std::ops::Range<u64>,
) -> Result<SessionReport, CaptureError> {
    let session = pool.open_session(cfg);
    let end = range.end.min(index.total_records());
    if range.start >= end {
        return Ok(session.finish());
    }
    let entry = *index.frame_for_record(range.start).expect("start record is inside the trace");
    reader.seek_to_frame(&entry)?;
    // Record number of the next frame's first record.
    let mut pos = entry.first_record;
    let mut chunk = TraceBatch::new();
    while pos < end && reader.read_chunk_into_batch(&mut chunk)? {
        let n = chunk.len();
        let skip = range.start.saturating_sub(pos).min(n as u64) as usize;
        let take_end = (end - pos).min(n as u64) as usize;
        if skip == 0 && take_end == n {
            let next = session.spare_batch();
            session.send_batch(std::mem::replace(&mut chunk, next))?;
        } else {
            // Edge frame: trim to the window through the entry view.
            let mut trimmed = session.spare_batch();
            trimmed.extend_entries(chunk.iter().skip(skip).take(take_end - skip));
            session.send_batch(trimmed)?;
        }
        pos += n as u64;
    }
    Ok(session.finish())
}

/// Replays a trace file at `path` through a fresh session on `pool`.
pub fn replay_file(
    pool: &MonitorPool,
    cfg: SessionConfig,
    path: impl AsRef<Path>,
) -> Result<SessionReport, CaptureError> {
    let file = File::open(path)?;
    let mut reader = TraceReader::new(BufReader::new(file))?;
    replay_reader(pool, cfg, &mut reader)
}
