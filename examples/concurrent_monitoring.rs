//! Four tenant applications, four different lifeguards, one monitor pool —
//! and **one** ingest thread.
//!
//! Earlier revisions dedicated a blocking producer thread to every tenant.
//! Here the `igm::trace::Ingestor` multiplexes all four sources on the
//! main thread instead: two in-memory generators, one *recorded trace
//! file* (captured to a buffer first, the durable-artifact path), and one
//! readiness-polled pipe fed by an external producer. Each session still
//! owns a private lifeguard + shadow-memory shard on its worker; a source
//! whose log channel fills is deferred and retried (per-source
//! backpressure) while the others keep flowing. Run with:
//!
//! ```sh
//! cargo run --release --example concurrent_monitoring
//! ```

use igm::lifeguards::LifeguardKind;
use igm::runtime::{stats_table, MonitorPool, PoolConfig, SessionConfig};
use igm::trace::{batch_pipe, encode_to_vec, FileSource, Ingestor, IterSource, TraceReader};
use igm::workload::{Benchmark, MtBenchmark};

fn main() {
    const N: u64 = 200_000;
    const CHUNK: u32 = 16 * 1024;
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let violations = pool.violation_stream().expect("first taker");

    // Tenant 1 (mcf/MemCheck) streams from a recorded trace artifact: the
    // workload is encoded once, then ingested as a file — any run becomes
    // reproducible from these bytes alone.
    let recorded = encode_to_vec(Benchmark::Mcf.trace(N), CHUNK);
    println!(
        "recorded mcf: {} records -> {} encoded bytes ({:.2} B/record vs {} B in memory)",
        N,
        recorded.len(),
        recorded.len() as f64 / N as f64,
        std::mem::size_of::<igm::isa::TraceEntry>(),
    );

    // Tenant 2 (zchaff/LockSet) arrives through a readiness-polled pipe
    // from an external producer thread — the ingest thread never blocks on
    // it.
    let (pipe_tx, pipe_rx) = batch_pipe(8);
    let feeder = std::thread::spawn(move || {
        for batch in igm::lba::chunks(MtBenchmark::Zchaff.trace(N), CHUNK) {
            if pipe_tx.send(batch).is_err() {
                return;
            }
        }
    });

    let mut ingestor = Ingestor::new(&pool);
    ingestor.add_source(
        SessionConfig::new("gzip", LifeguardKind::AddrCheck)
            .synthetic()
            .premark(&Benchmark::Gzip.profile().premark_regions()),
        IterSource::new(Benchmark::Gzip.trace(N), CHUNK),
    );
    ingestor.add_source(
        SessionConfig::new("mcf", LifeguardKind::MemCheck)
            .synthetic()
            .premark(&Benchmark::Mcf.profile().premark_regions()),
        FileSource::new(TraceReader::new(std::io::Cursor::new(recorded)).expect("own encoding")),
    );
    ingestor.add_source(
        SessionConfig::new("gcc", LifeguardKind::TaintCheck)
            .synthetic()
            .premark(&Benchmark::Gcc.profile().premark_regions()),
        IterSource::new(Benchmark::Gcc.trace(N), CHUNK),
    );
    ingestor.add_source(
        SessionConfig::new("zchaff", LifeguardKind::LockSet)
            .synthetic()
            .premark(&MtBenchmark::Zchaff.trace(N).premark_regions()),
        pipe_rx,
    );

    println!("\nmultiplexing {} tenants x {N} records on one ingest thread…\n", ingestor.lanes());
    let report = ingestor.run();
    feeder.join().unwrap();

    print!("{}", stats_table(&report.sessions));

    println!("\nlane        batches   records   deferred   pending-polls");
    for (name, lane) in &report.lanes {
        println!(
            "{name:<10} {:>8} {:>9} {:>10} {:>15}",
            lane.batches, lane.records, lane.deferred_sends, lane.pending_polls
        );
    }

    let pool_stats = pool.stats();
    println!(
        "\npool: {} sessions, {:.0} records/s aggregate, {} events delivered, {} steals, {} ingest passes",
        pool_stats.sessions_closed,
        pool_stats.records_per_sec(),
        pool_stats.events_delivered,
        pool_stats.steals,
        report.passes,
    );
    for v in violations.drain().into_iter().take(5) {
        println!("violation [{}/{}]: {:?}", v.tenant, v.lifeguard, v.violation);
    }
    pool.shutdown();
}
