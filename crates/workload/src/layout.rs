//! The synthetic application's address-space layout.
//!
//! Mirrors a typical IA32 Linux process (paper Figure 6, left margin): code
//! low, globals above it, heap growing up, a large mmap region, stack
//! growing down from just below the 3 GB boundary. Occupying both extremes
//! is what makes the one-level shadow design impractical and gives the
//! flexible level-1 sizing of Figure 14(b) realistic work to do.

/// Base of the code segment.
pub const CODE_BASE: u32 = 0x0804_8000;
/// Base of the global data segment.
pub const GLOBALS_BASE: u32 = 0x0810_0000;
/// Base of the heap.
pub const HEAP_BASE: u32 = 0x0900_0000;
/// Base of the mmap region used for very large working sets (mcf-style).
pub const MMAP_BASE: u32 = 0x4000_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = 0xbfff_f000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn regions_are_ordered_and_disjoint() {
        assert!(CODE_BASE < GLOBALS_BASE);
        assert!(GLOBALS_BASE < HEAP_BASE);
        assert!(HEAP_BASE < MMAP_BASE);
        assert!(MMAP_BASE < STACK_TOP);
    }
}
