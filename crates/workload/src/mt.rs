//! Multithreaded workload generators for the LockSet study (paper Table 3).
//!
//! Each benchmark spawns two worker threads pinned to the application core
//! (as in the paper, which restricts both threads to core 1 with
//! `sched_setaffinity`); the log is therefore a single interleaved stream
//! with [`Annotation::ThreadSwitch`] records at scheduling boundaries.
//!
//! Threads own private heap halves and stacks, and share a set of lock-
//! protected regions. A well-behaved trace acquires the region's lock
//! around every shared access; [`MtTraceGen::with_race`] plants accesses
//! that skip the lock, which LockSet must flag.

use crate::layout::{GLOBALS_BASE, HEAP_BASE, STACK_TOP};
use igm_isa::{Annotation, CtrlOp, MemRef, OpClass, Reg, RegSet, TraceEntry, TraceOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// The five multithreaded benchmarks of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MtBenchmark {
    /// NCBI BLAST: nucleotide/protein database search (read-mostly shared
    /// database).
    Blast,
    /// Parallel bzip2 compression (mostly private work, shared queue).
    Pbzip2,
    /// Parallel bzip2 decompression.
    Pbunzip2,
    /// SPLASH-2 water simulation (shared molecule arrays under fine locks).
    WaterNq,
    /// zChaff SAT solver (shared clause database and assignment).
    Zchaff,
}

impl MtBenchmark {
    /// All benchmarks in Table 3 order.
    pub const ALL: [MtBenchmark; 5] = [
        MtBenchmark::Blast,
        MtBenchmark::Pbzip2,
        MtBenchmark::Pbunzip2,
        MtBenchmark::WaterNq,
        MtBenchmark::Zchaff,
    ];

    /// The benchmark's name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MtBenchmark::Blast => "blast",
            MtBenchmark::Pbzip2 => "pbzip2",
            MtBenchmark::Pbunzip2 => "pbunzip2",
            MtBenchmark::WaterNq => "water",
            MtBenchmark::Zchaff => "zchaff",
        }
    }

    fn params(self) -> MtParams {
        match self {
            MtBenchmark::Blast => MtParams {
                shared_fraction: 0.35,
                read_mostly: true,
                shared_regions: 16,
                region_bytes: 16 * 1024,
                switch_every: 600,
                copy_heavy: false,
            },
            MtBenchmark::Pbzip2 => MtParams {
                shared_fraction: 0.06,
                read_mostly: false,
                shared_regions: 4,
                region_bytes: 4 * 1024,
                switch_every: 900,
                copy_heavy: true,
            },
            MtBenchmark::Pbunzip2 => MtParams {
                shared_fraction: 0.08,
                read_mostly: false,
                shared_regions: 4,
                region_bytes: 4 * 1024,
                switch_every: 800,
                copy_heavy: true,
            },
            MtBenchmark::WaterNq => MtParams {
                shared_fraction: 0.25,
                read_mostly: false,
                shared_regions: 32,
                region_bytes: 2 * 1024,
                switch_every: 500,
                copy_heavy: false,
            },
            MtBenchmark::Zchaff => MtParams {
                shared_fraction: 0.30,
                read_mostly: false,
                shared_regions: 24,
                region_bytes: 8 * 1024,
                switch_every: 400,
                copy_heavy: false,
            },
        }
    }

    /// A deterministic two-thread trace of `n` records.
    pub fn trace(self, n: u64) -> MtTraceGen {
        MtTraceGen::new(self, n, false)
    }

    /// Like [`Self::trace`], but plants unsynchronized accesses to shared
    /// regions (true data races) for detection tests.
    pub fn trace_with_race(self, n: u64) -> MtTraceGen {
        MtTraceGen::new(self, n, true)
    }
}

impl fmt::Display for MtBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Clone, Copy)]
struct MtParams {
    /// Probability a burst targets a shared region.
    shared_fraction: f64,
    /// Shared accesses are predominantly reads (database-style).
    read_mostly: bool,
    shared_regions: u32,
    region_bytes: u32,
    /// Mean records between thread switches.
    switch_every: u64,
    /// Private work is copy-dominated (compressor-style).
    copy_heavy: bool,
}

#[derive(Debug, Clone, Copy)]
struct SharedRegion {
    base: u32,
    bytes: u32,
    lock: u32,
}

#[derive(Debug, Clone, Copy)]
struct ThreadCtx {
    heap_base: u32,
    heap_bytes: u32,
}

/// Interleaved two-thread trace generator.
#[derive(Debug)]
pub struct MtTraceGen {
    rng: StdRng,
    params: MtParams,
    target: u64,
    emitted: u64,
    queue: VecDeque<TraceEntry>,
    shared: Vec<SharedRegion>,
    threads: [ThreadCtx; 2],
    tid: usize,
    until_switch: u64,
    with_race: bool,
    started: bool,
    /// Count of planted racy accesses (for tests).
    planted_races: u64,
}

/// Base address of lock objects in the global segment.
const LOCKS_BASE: u32 = GLOBALS_BASE + 0x8000;
/// Base of the shared heap area.
const SHARED_BASE: u32 = HEAP_BASE;
/// Per-thread private heap size.
const PRIVATE_BYTES: u32 = 2 * 1024 * 1024;

impl MtTraceGen {
    fn new(bench: MtBenchmark, target: u64, with_race: bool) -> MtTraceGen {
        let params = bench.params();
        let shared: Vec<SharedRegion> = (0..params.shared_regions)
            .map(|i| SharedRegion {
                base: SHARED_BASE + i * params.region_bytes,
                bytes: params.region_bytes,
                lock: LOCKS_BASE + i * 64,
            })
            .collect();
        let shared_end = SHARED_BASE + params.shared_regions * params.region_bytes;
        let threads = [
            ThreadCtx { heap_base: shared_end, heap_bytes: PRIVATE_BYTES },
            ThreadCtx { heap_base: shared_end + PRIVATE_BYTES, heap_bytes: PRIVATE_BYTES },
        ];
        MtTraceGen {
            rng: StdRng::seed_from_u64(bench as u64 + 0x5eed),
            params,
            target,
            emitted: 0,
            queue: VecDeque::new(),
            shared,
            threads,
            tid: 0,
            until_switch: params.switch_every,
            with_race,
            started: false,
            planted_races: 0,
        }
    }

    /// Regions the harness must pre-mark accessible/initialized: both
    /// stacks, globals (locks live there) and the full heap area (shared +
    /// private halves are populated with `Malloc` records at bootstrap).
    pub fn premark_regions(&self) -> Vec<(u32, u32)> {
        vec![(GLOBALS_BASE, 256 * 1024), (STACK_TOP - 1024 * 1024, 1024 * 1024)]
    }

    /// Number of planted unsynchronized accesses so far.
    pub fn planted_races(&self) -> u64 {
        self.planted_races
    }

    fn op(&mut self, pc: u32, op: OpClass, addr_regs: RegSet) {
        self.queue.push_back(TraceEntry { pc, op: TraceOp::Op(op), addr_regs });
    }

    fn annot(&mut self, a: Annotation) {
        self.queue.push_back(TraceEntry::annot(0x0804_7000, a));
    }

    fn bootstrap(&mut self) {
        self.annot(Annotation::ThreadSwitch { tid: 0 });
        // Shared regions and per-thread arenas are heap allocations.
        let regions: Vec<(u32, u32)> = self.shared.iter().map(|r| (r.base, r.bytes)).collect();
        for (base, bytes) in regions {
            self.annot(Annotation::Malloc { base, size: bytes });
        }
        for t in 0..2 {
            let (b, s) = (self.threads[t].heap_base, self.threads[t].heap_bytes);
            // Arena carved into block-sized mallocs for realism.
            let block = 64 * 1024;
            let mut off = 0;
            while off < s {
                self.annot(Annotation::Malloc { base: b + off, size: block.min(s - off) });
                off += block;
            }
        }
    }

    fn burst_private(&mut self) -> u64 {
        let t = self.threads[self.tid];
        let pc0 = 0x0805_0000 + (self.tid as u32) * 0x1000;
        let mut count = 0u64;
        if self.params.copy_heavy {
            // Copy a run of words between two private offsets.
            let words = self.rng.gen_range(8u32..40);
            let src = t.heap_base + self.rng.gen_range(0..(t.heap_bytes / 4 - words)) * 4;
            let dst = t.heap_base + self.rng.gen_range(0..(t.heap_bytes / 4 - words)) * 4;
            self.op(pc0, OpClass::ImmToReg { rd: Reg::Esi }, RegSet::EMPTY);
            self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Edi }, RegSet::EMPTY);
            count += 2;
            for i in 0..words {
                self.op(
                    pc0 + 8,
                    OpClass::MemToMem {
                        src: MemRef::word(src + i * 4),
                        dst: MemRef::word(dst + i * 4),
                    },
                    RegSet::from_regs([Reg::Esi, Reg::Edi]),
                );
                count += 1;
            }
        } else {
            // Scan + compute over a small private window (reused across
            // bursts: pick among a few windows for temporal locality).
            let window = self.rng.gen_range(0u32..8);
            let base = t.heap_base + window * 4096;
            let iters = self.rng.gen_range(8u32..32);
            self.op(pc0, OpClass::ImmToReg { rd: Reg::Ebx }, RegSet::EMPTY);
            self.op(pc0 + 4, OpClass::ImmToReg { rd: Reg::Ecx }, RegSet::EMPTY);
            count += 2;
            for i in 0..iters {
                let m = MemRef::word(base + (i % 16) * 4);
                self.op(
                    pc0 + 8,
                    OpClass::MemToReg { src: m, rd: Reg::Eax },
                    RegSet::from_regs([Reg::Ebx]),
                );
                self.op(
                    pc0 + 12,
                    OpClass::DestRegOpReg { rs: Reg::Eax, rd: Reg::Edx },
                    RegSet::EMPTY,
                );
                if i % 4 == 0 {
                    self.op(
                        pc0 + 16,
                        OpClass::RegToMem { rs: Reg::Edx, dst: m },
                        RegSet::from_regs([Reg::Ebx]),
                    );
                    count += 1;
                }
                // Frame-slot traffic (spills/reloads), as in the ST engine.
                let slot =
                    MemRef::word(STACK_TOP - 64 * 1024 * (self.tid as u32) - 8 - 4 * (i % 6));
                self.op(
                    pc0 + 18,
                    OpClass::MemToReg { src: slot, rd: Reg::Esi },
                    RegSet::from_regs([Reg::Esp]),
                );
                count += 1;
                self.op(pc0 + 20, OpClass::RegSelf { rd: Reg::Ecx }, RegSet::EMPTY);
                self.op(
                    pc0 + 24,
                    OpClass::ReadOnly { src: None, reads: RegSet::from_regs([Reg::Ecx]) },
                    RegSet::EMPTY,
                );
                self.queue.push_back(TraceEntry::ctrl(
                    pc0 + 28,
                    CtrlOp::CondBranch { input: Some(Reg::Ecx) },
                ));
                count += 5;
            }
        }
        count
    }

    fn burst_shared(&mut self) -> u64 {
        let ridx = self.rng.gen_range(0..self.shared.len());
        let region = self.shared[ridx];
        let pc0 = 0x0806_0000 + (self.tid as u32) * 0x1000;
        let mut count = 0u64;
        let racy = self.with_race && self.rng.gen_bool(0.05);
        if !racy {
            self.annot(Annotation::Lock { lock: region.lock });
            count += 1;
        } else {
            self.planted_races += 1;
        }
        // A critical section updates a handful of object fields repeatedly
        // (list heads, counters, node payloads) — the reuse that the
        // Idempotent Filter exploits between invalidations.
        // Every critical section updates the region's header word (a
        // counter/list head shared by all threads) plus a few skewed
        // payload fields — the contention structure of real shared objects.
        let slots = region.bytes / 4;
        let mut fields: Vec<u32> = vec![region.base];
        for _ in 0..self.rng.gen_range(1u32..5) {
            let r = self.rng.gen_range(0..slots);
            fields.push(region.base + (r * r / slots.max(1)) * 4);
        }
        let accesses = self.rng.gen_range(20u32..80);
        for i in 0..accesses {
            let slot = fields[(i as usize) % fields.len()];
            let m = MemRef::word(slot);
            let is_write = !self.params.read_mostly && self.rng.gen_bool(0.4);
            if is_write {
                self.op(
                    pc0,
                    OpClass::RegToMem { rs: Reg::Edx, dst: m },
                    RegSet::from_regs([Reg::Ebx]),
                );
            } else {
                self.op(
                    pc0 + 4,
                    OpClass::MemToReg { src: m, rd: Reg::Eax },
                    RegSet::from_regs([Reg::Ebx]),
                );
            }
            // Interleave a little register work between shared accesses.
            if i % 3 == 0 {
                self.op(
                    pc0 + 8,
                    OpClass::DestRegOpReg { rs: Reg::Eax, rd: Reg::Edx },
                    RegSet::EMPTY,
                );
                count += 1;
            }
            count += 1;
        }
        if !racy {
            self.annot(Annotation::Unlock { lock: region.lock });
            count += 1;
        }
        count
    }

    fn refill(&mut self) {
        if !self.started {
            self.started = true;
            self.bootstrap();
            return;
        }
        let emitted = if self.rng.gen_bool(self.params.shared_fraction) {
            self.burst_shared()
        } else {
            self.burst_private()
        };
        if self.until_switch <= emitted {
            self.tid ^= 1;
            self.annot(Annotation::ThreadSwitch { tid: self.tid as u32 });
            // Jitter the next quantum around the mean.
            let mean = self.params.switch_every;
            self.until_switch = self.rng.gen_range(mean / 2..mean * 3 / 2).max(50);
        } else {
            self.until_switch -= emitted;
        }
    }
}

impl Iterator for MtTraceGen {
    type Item = TraceEntry;

    fn next(&mut self) -> Option<TraceEntry> {
        if self.emitted >= self.target {
            return None;
        }
        while self.queue.is_empty() {
            self.refill();
        }
        self.emitted += 1;
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_target_and_is_deterministic() {
        let a: Vec<_> = MtBenchmark::WaterNq.trace(30_000).collect();
        let b: Vec<_> = MtBenchmark::WaterNq.trace(30_000).collect();
        assert_eq!(a.len(), 30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn both_threads_run() {
        let mut seen = std::collections::HashSet::new();
        for e in MtBenchmark::Zchaff.trace(50_000) {
            if let TraceOp::Annot(Annotation::ThreadSwitch { tid }) = e.op {
                seen.insert(tid);
            }
        }
        assert_eq!(seen.len(), 2, "expected both thread ids, saw {seen:?}");
    }

    #[test]
    fn locks_are_balanced_and_guard_shared_accesses() {
        let mut held: Option<u32> = None;
        for e in MtBenchmark::Blast.trace(80_000) {
            match e.op {
                TraceOp::Annot(Annotation::Lock { lock }) => {
                    assert_eq!(held, None, "nested lock");
                    held = Some(lock);
                }
                TraceOp::Annot(Annotation::Unlock { lock }) => {
                    assert_eq!(held, Some(lock), "unlock without lock");
                    held = None;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn clean_trace_has_no_planted_races() {
        let mut g = MtBenchmark::WaterNq.trace(50_000);
        while g.next().is_some() {}
        assert_eq!(g.planted_races(), 0);
    }

    #[test]
    fn racy_trace_plants_races() {
        let mut g = MtBenchmark::WaterNq.trace_with_race(200_000);
        while g.next().is_some() {}
        assert!(g.planted_races() > 0);
    }

    #[test]
    fn read_mostly_profile_emits_no_shared_writes() {
        // blast's shared database is read-only in our model.
        let shared_end = SHARED_BASE + 16 * 16 * 1024;
        for e in MtBenchmark::Blast.trace(80_000) {
            if let Some(w) = e.mem_write() {
                assert!(
                    !(SHARED_BASE..shared_end).contains(&w.addr),
                    "unexpected shared write {w}"
                );
            }
        }
    }

    #[test]
    fn all_benchmarks_have_distinct_names() {
        let mut names: Vec<_> = MtBenchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
