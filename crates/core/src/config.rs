//! Per-experiment accelerator configurations.
//!
//! [`AccelConfig`] selects which of the three techniques are active,
//! mirroring the BASE → LMA → LMA+IT → LMA+IT+IF progression of the paper's
//! Figure 11. A lifeguard additionally masks the configuration by its own
//! applicability row in Figure 2 (e.g. AddrCheck never uses IT); that
//! masking lives in `igm-lifeguards`.

use crate::filter::IfGeometry;
use crate::it::ItConfig;
use std::fmt;

/// One of the paper's three techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Metadata-TLB + `LMA` instruction (metadata mapping).
    Lma,
    /// Inheritance Tracking (metadata updates).
    It,
    /// Idempotent Filters (metadata checks).
    If,
}

/// Default M-TLB capacity used in the simulation studies. Figure 14 sweeps
/// 16–256 entries; 64 captures most of the benefit for the flexible layout.
pub const DEFAULT_MTLB_ENTRIES: usize = 64;

/// Which accelerators a simulation run enables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Handlers translate through the M-TLB (`lma`) instead of the
    /// five-instruction software walk.
    pub lma: bool,
    /// M-TLB capacity in entries (only meaningful when `lma` is set).
    pub mtlb_entries: usize,
    /// Inheritance Tracking policy, if enabled.
    pub it: Option<ItConfig>,
    /// Idempotent Filter geometry, if enabled.
    pub if_geometry: Option<IfGeometry>,
}

impl Default for AccelConfig {
    fn default() -> AccelConfig {
        AccelConfig::baseline()
    }
}

impl AccelConfig {
    /// The unaccelerated LBA baseline.
    pub fn baseline() -> AccelConfig {
        AccelConfig { lma: false, mtlb_entries: DEFAULT_MTLB_ENTRIES, it: None, if_geometry: None }
    }

    /// LMA only.
    pub fn lma() -> AccelConfig {
        AccelConfig { lma: true, ..AccelConfig::baseline() }
    }

    /// LMA + Inheritance Tracking.
    pub fn lma_it(it: ItConfig) -> AccelConfig {
        AccelConfig { lma: true, it: Some(it), ..AccelConfig::baseline() }
    }

    /// LMA + Idempotent Filter (the paper's simulated 32-entry filter).
    pub fn lma_if() -> AccelConfig {
        AccelConfig {
            lma: true,
            if_geometry: Some(IfGeometry::isca08()),
            ..AccelConfig::baseline()
        }
    }

    /// All three techniques.
    pub fn full(it: ItConfig) -> AccelConfig {
        AccelConfig {
            lma: true,
            it: Some(it),
            if_geometry: Some(IfGeometry::isca08()),
            ..AccelConfig::baseline()
        }
    }

    /// Whether `t` is enabled.
    pub fn has(&self, t: Technique) -> bool {
        match t {
            Technique::Lma => self.lma,
            Technique::It => self.it.is_some(),
            Technique::If => self.if_geometry.is_some(),
        }
    }

    /// Short label for experiment tables (`BASE`, `LMA`, `LMA+IT`,
    /// `LMA+IF`, `LMA+IT+IF`).
    pub fn label(&self) -> String {
        if !self.lma && self.it.is_none() && self.if_geometry.is_none() {
            return "BASE".to_owned();
        }
        let mut parts = Vec::new();
        if self.lma {
            parts.push("LMA");
        }
        if self.it.is_some() {
            parts.push("IT");
        }
        if self.if_geometry.is_some() {
            parts.push("IF");
        }
        parts.join("+")
    }
}

impl fmt::Display for AccelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure11_bars() {
        assert_eq!(AccelConfig::baseline().label(), "BASE");
        assert_eq!(AccelConfig::lma().label(), "LMA");
        assert_eq!(AccelConfig::lma_it(ItConfig::taint_style()).label(), "LMA+IT");
        assert_eq!(AccelConfig::lma_if().label(), "LMA+IF");
        assert_eq!(AccelConfig::full(ItConfig::taint_style()).label(), "LMA+IT+IF");
    }

    #[test]
    fn has_reports_enabled_techniques() {
        let c = AccelConfig::full(ItConfig::memcheck_style());
        assert!(c.has(Technique::Lma) && c.has(Technique::It) && c.has(Technique::If));
        let b = AccelConfig::baseline();
        assert!(!b.has(Technique::Lma) && !b.has(Technique::It) && !b.has(Technique::If));
    }

    #[test]
    fn default_is_baseline() {
        assert_eq!(AccelConfig::default(), AccelConfig::baseline());
    }
}
