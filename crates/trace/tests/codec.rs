//! Codec correctness: property-tested roundtrip over arbitrary
//! `TraceEntry` sequences, plus the framing error paths (truncation,
//! checksum corruption, zero-length chunks, field validation).

use igm_isa::{
    Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, Reg, RegSet, TraceEntry, TraceOp,
};
use igm_trace::{
    checksum, decode_from_slice, encode_to_vec, TraceError, TraceReader, TraceWriter,
    FORMAT_VERSION, MAGIC,
};
use proptest::collection::vec;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Strategies over the full trace vocabulary.
// ---------------------------------------------------------------------------

fn reg() -> impl Strategy<Value = Reg> {
    (0usize..8).prop_map(Reg::from_index)
}

fn mem_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4)]
}

fn mem_ref() -> impl Strategy<Value = MemRef> {
    (any::<u32>(), mem_size()).prop_map(|(addr, size)| MemRef::new(addr, size))
}

fn regset() -> impl Strategy<Value = RegSet> {
    any::<u8>().prop_map(RegSet::from_bits)
}

fn op_class() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        reg().prop_map(|rd| OpClass::ImmToReg { rd }),
        mem_ref().prop_map(|dst| OpClass::ImmToMem { dst }),
        reg().prop_map(|rd| OpClass::RegSelf { rd }),
        mem_ref().prop_map(|dst| OpClass::MemSelf { dst }),
        (reg(), reg()).prop_map(|(rs, rd)| OpClass::RegToReg { rs, rd }),
        (reg(), mem_ref()).prop_map(|(rs, dst)| OpClass::RegToMem { rs, dst }),
        (mem_ref(), reg()).prop_map(|(src, rd)| OpClass::MemToReg { src, rd }),
        (mem_ref(), mem_ref()).prop_map(|(src, dst)| OpClass::MemToMem { src, dst }),
        (reg(), reg()).prop_map(|(rs, rd)| OpClass::DestRegOpReg { rs, rd }),
        (mem_ref(), reg()).prop_map(|(src, rd)| OpClass::DestRegOpMem { src, rd }),
        (reg(), mem_ref()).prop_map(|(rs, dst)| OpClass::DestMemOpReg { rs, dst }),
        (proptest::option::of(mem_ref()), regset())
            .prop_map(|(src, reads)| OpClass::ReadOnly { src, reads }),
        (regset(), regset(), proptest::option::of(mem_ref()), proptest::option::of(mem_ref()))
            .prop_map(|(reads, writes, mem_read, mem_write)| OpClass::Other {
                reads,
                writes,
                mem_read,
                mem_write
            }),
    ]
}

fn ctrl_op() -> impl Strategy<Value = CtrlOp> {
    prop_oneof![
        Just(CtrlOp::Direct),
        reg().prop_map(|r| CtrlOp::Indirect { target: JumpTarget::Reg(r) }),
        mem_ref().prop_map(|m| CtrlOp::Indirect { target: JumpTarget::Mem(m) }),
        proptest::option::of(reg()).prop_map(|input| CtrlOp::CondBranch { input }),
        mem_ref().prop_map(|slot| CtrlOp::Ret { slot }),
    ]
}

fn annotation() -> impl Strategy<Value = Annotation> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(base, size)| Annotation::Malloc { base, size }),
        any::<u32>().prop_map(|base| Annotation::Free { base }),
        any::<u32>().prop_map(|lock| Annotation::Lock { lock }),
        any::<u32>().prop_map(|lock| Annotation::Unlock { lock }),
        (any::<u32>(), any::<u32>()).prop_map(|(base, len)| Annotation::ReadInput { base, len }),
        (proptest::option::of(reg()), proptest::option::of(mem_ref()))
            .prop_map(|(arg_reg, arg_mem)| Annotation::Syscall { arg_reg, arg_mem }),
        mem_ref().prop_map(|fmt| Annotation::PrintfFormat { fmt }),
        any::<u32>().prop_map(|tid| Annotation::ThreadSwitch { tid }),
        any::<u32>().prop_map(|tid| Annotation::ThreadExit { tid }),
    ]
}

fn trace_entry() -> impl Strategy<Value = TraceEntry> {
    (
        any::<u32>(),
        prop_oneof![
            10 => op_class().prop_map(TraceOp::Op),
            3 => ctrl_op().prop_map(TraceOp::Ctrl),
            2 => annotation().prop_map(TraceOp::Annot),
        ],
        regset(),
    )
        .prop_map(|(pc, op, addr_regs)| TraceEntry { pc, op, addr_regs })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_arbitrary_sequences(
        entries in vec(trace_entry(), 0..200),
        chunk_bytes in 1u32..600,
    ) {
        let bytes = encode_to_vec(entries.iter().copied(), chunk_bytes);
        let decoded = decode_from_slice(&bytes).expect("well-formed stream decodes");
        prop_assert_eq!(decoded, entries);
    }

    #[test]
    fn encoding_is_deterministic(entries in vec(trace_entry(), 0..100)) {
        let a = encode_to_vec(entries.iter().copied(), 256);
        let b = encode_to_vec(entries.iter().copied(), 256);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn truncation_never_panics_and_always_errors(
        entries in vec(trace_entry(), 1..60),
        cut_frac in 0u32..1000,
    ) {
        let bytes = encode_to_vec(entries.iter().copied(), 128);
        // Cut strictly inside the stream: every prefix must either fail or
        // decode to a strict prefix of the chunk sequence (cuts at frame
        // boundaries decode cleanly — by design, a trailing well-formed
        // prefix is a valid shorter trace).
        let cut = 1 + (cut_frac as usize * (bytes.len() - 1)) / 1000;
        match decode_from_slice(&bytes[..cut]) {
            Ok(prefix) => {
                prop_assert!(prefix.len() <= entries.len());
                prop_assert_eq!(&entries[..prefix.len()], &prefix[..]);
            }
            Err(TraceError::BadMagic) => prop_assert!(cut < 8, "magic is the first 8 bytes"),
            Err(TraceError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Directed framing error paths.
// ---------------------------------------------------------------------------

fn sample_entries() -> Vec<TraceEntry> {
    vec![
        TraceEntry::op(0x0804_8000, OpClass::ImmToReg { rd: Reg::Eax }),
        TraceEntry::op(0x0804_8004, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Ecx })
            .with_addr_regs(RegSet::from_regs([Reg::Ebx])),
        TraceEntry::annot(0x0804_8008, Annotation::Malloc { base: 0xa000, size: 64 }),
        TraceEntry::ctrl(0x0804_800c, CtrlOp::Ret { slot: MemRef::word(0xbfff_fffc) }),
    ]
}

/// A stream header followed by one hand-built frame.
fn raw_stream(records: u32, payload: &[u8], sum: u32) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&records.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

#[test]
fn bad_magic_is_rejected() {
    assert!(matches!(TraceReader::new(&b"NOPE0000"[..]), Err(TraceError::BadMagic)));
    assert!(matches!(TraceReader::new(&b"IG"[..]), Err(TraceError::BadMagic)));
}

#[test]
fn future_version_is_rejected() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&99u32.to_le_bytes());
    assert!(matches!(TraceReader::new(&bytes[..]), Err(TraceError::UnsupportedVersion(99))));
}

#[test]
fn corrupt_checksum_is_detected() {
    let mut bytes = encode_to_vec(sample_entries(), 64);
    // Flip one bit in the frame payload (after the 8-byte file header and
    // 12-byte frame header).
    let idx = bytes.len() - 1;
    bytes[idx] ^= 0x40;
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(
            reason.contains("checksum") || reason.contains("trailing") || reason.contains("ends"),
            "unexpected reason: {reason}"
        ),
        other => panic!("corruption not detected: {other:?}"),
    }
}

#[test]
fn checksum_mismatch_reports_payload_offset() {
    let payload = [0u8; 4];
    let bytes = raw_stream(1, &payload, checksum(&payload) ^ 1);
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { offset, reason }) => {
            assert_eq!(offset, 20, "payload begins after 8B header + 12B frame header");
            assert!(reason.contains("checksum"));
        }
        other => panic!("expected checksum error, got {other:?}"),
    }
}

#[test]
fn zero_record_frame_is_corrupt() {
    let payload = [0u8; 2];
    let bytes = raw_stream(0, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("zero-record")),
        other => panic!("expected zero-record error, got {other:?}"),
    }
}

#[test]
fn zero_length_payload_is_corrupt() {
    let bytes = raw_stream(3, &[], checksum(&[]));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("zero-length")),
        other => panic!("expected zero-length error, got {other:?}"),
    }
}

#[test]
fn truncated_header_and_payload_are_corrupt() {
    let bytes = encode_to_vec(sample_entries(), 64);
    // Inside the frame header.
    match decode_from_slice(&bytes[..8 + 5]) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("frame header")),
        other => panic!("expected truncated-header error, got {other:?}"),
    }
    // Inside the payload.
    match decode_from_slice(&bytes[..bytes.len() - 1]) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("payload")),
        other => panic!("expected truncated-payload error, got {other:?}"),
    }
}

#[test]
fn unknown_tag_is_corrupt_even_with_valid_checksum() {
    // tag 26 does not exist; pc delta 0.
    let payload = [26u8, 0u8];
    let bytes = raw_stream(1, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("unknown record tag")),
        other => panic!("expected unknown-tag error, got {other:?}"),
    }
}

#[test]
fn out_of_range_register_is_corrupt() {
    // ImmToReg (tag 0), pc delta 0, register index 9.
    let payload = [0u8, 0u8, 9u8];
    let bytes = raw_stream(1, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("register")),
        other => panic!("expected register-range error, got {other:?}"),
    }
}

#[test]
fn trailing_payload_bytes_are_corrupt() {
    // One valid ImmToReg record plus a stray byte, checksummed correctly.
    let payload = [0u8, 0u8, 3u8, 0xEE];
    let bytes = raw_stream(1, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("trailing")),
        other => panic!("expected trailing-bytes error, got {other:?}"),
    }
}

#[test]
fn inflated_record_count_is_rejected_before_allocation() {
    // Valid 4-byte payload and checksum, but a record count (the header
    // is not checksummed) that no 4-byte payload could hold: must be a
    // typed error, not a huge `Vec::reserve`.
    let payload = [0u8, 0u8, 3u8, 0xEE];
    let bytes = raw_stream(u32::MAX, &payload, checksum(&payload));
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("inconsistent")),
        other => panic!("expected count-consistency error, got {other:?}"),
    }
}

#[test]
fn oversized_length_field_is_rejected_before_allocation() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&1u32.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd payload_len
    bytes.extend_from_slice(&0u32.to_le_bytes());
    match decode_from_slice(&bytes) {
        Err(TraceError::Corrupt { reason, .. }) => assert!(reason.contains("bound")),
        other => panic!("expected length-bound error, got {other:?}"),
    }
}

#[test]
fn empty_stream_and_empty_chunks() {
    // Header-only stream: zero entries.
    let bytes = encode_to_vec(std::iter::empty(), 64);
    assert_eq!(decode_from_slice(&bytes).unwrap(), Vec::<TraceEntry>::new());
    // Writer skips empty batches entirely.
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    w.write_chunk(&[]).unwrap();
    assert_eq!(w.chunks(), 0);
    let bytes = w.finish().unwrap();
    assert_eq!(decode_from_slice(&bytes).unwrap(), Vec::<TraceEntry>::new());
}

#[test]
fn reader_preserves_chunk_structure() {
    let entries = sample_entries();
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    w.write_chunk(&entries[..2]).unwrap();
    w.write_chunk(&entries[2..]).unwrap();
    let bytes = w.finish().unwrap();
    let mut r = TraceReader::new(&bytes[..]).unwrap();
    let mut chunk = Vec::new();
    assert!(r.read_chunk_into(&mut chunk).unwrap());
    assert_eq!(chunk, &entries[..2]);
    assert!(r.read_chunk_into(&mut chunk).unwrap());
    assert_eq!(chunk, &entries[2..]);
    assert!(!r.read_chunk_into(&mut chunk).unwrap());
    assert!(chunk.is_empty(), "clean EOF leaves the buffer cleared");
    assert_eq!(r.chunks(), 2);
    assert_eq!(r.records(), 4);
}
