//! The client side: [`TraceForwarder`] ships a live record stream or a
//! recorded trace file to a remote [`IngestServer`](crate::IngestServer),
//! honoring the server's byte credits.

use crate::wire::{self, Fill, FinStats, MsgBuf, NetError, MSG_HEADER_BYTES, NET_VERSION};
use igm_isa::TraceEntry;
use igm_lba::{chunks, TraceBatch};
use igm_obs::{Histogram, MetricsRegistry};
use igm_runtime::SessionConfig;
use igm_trace::{encode_frame_with, Codec, CodecMetrics, Predictors, TraceReader};
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::{Duration, Instant};

/// Client-side transport parameters.
#[derive(Debug, Clone)]
pub struct ForwarderConfig {
    /// Records are chunked at this many compressed-model bytes per frame
    /// (one wire chunk per frame). Matches the pool's default transport
    /// chunk so a forwarded stream reproduces a local session's batch
    /// boundaries — which is what makes the loopback-equivalence guarantee
    /// exact.
    pub chunk_bytes: u32,
    /// How long to wait for the server's handshake reply (and for the
    /// final `FIN_ACK`).
    pub handshake_timeout: Duration,
    /// The trace codec every chunk frame on this lane will carry,
    /// negotiated in the `HELLO`. Defaults to the value-predicted codec;
    /// [`Codec::Delta`] trades ~4–5× more wire bytes for a simpler
    /// payload.
    pub codec: Codec,
}

impl Default for ForwarderConfig {
    fn default() -> ForwarderConfig {
        ForwarderConfig {
            // Inherit the pool's transport default so the two can never
            // silently diverge (the batch-boundary equivalence guarantee
            // depends on them matching).
            chunk_bytes: igm_runtime::PoolConfig::default().chunk_bytes,
            handshake_timeout: Duration::from_secs(10),
            codec: Codec::Predicted,
        }
    }
}

/// Counters a forwarder accumulates (the client-side analogue of the
/// ingest lane's [`LaneStats`](igm_trace::LaneStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwarderStats {
    /// Chunk messages sent.
    pub chunks: u64,
    /// Records encoded into them.
    pub records: u64,
    /// Credit-accounted frame bytes sent.
    pub frame_bytes: u64,
    /// Sends that found the credit allowance exhausted and had to wait for
    /// a grant — the remote analogue of the SPSC channel's producer
    /// stalls: each one means the server-side log channel (and behind it,
    /// a lifeguard) was the bottleneck.
    pub credit_stalls: u64,
    /// Wall-clock nanoseconds spent waiting for credit.
    pub credit_stall_nanos: u64,
}

/// What a finished forwarding session produced.
#[derive(Debug, Clone, Copy)]
pub struct ForwarderReport {
    /// Client-side counters.
    pub stats: ForwarderStats,
    /// Records the server acknowledged ingesting (`FIN_ACK`). Equal to
    /// `stats.records` on a healthy lane.
    pub server_records: u64,
}

/// A connection streaming one tenant's records to a remote ingest server.
///
/// The forwarder encodes every batch as a standard `igm-trace` codec
/// frame (the same bytes a [`CaptureSession`](igm_trace::CaptureSession)
/// would write) and ships it inside a chunk message, spending the byte
/// credits the server grants; when the allowance runs out the send
/// *stalls* — counted in [`ForwarderStats::credit_stalls`] — until the
/// pool drains and a grant arrives. Sources can be live record iterators
/// ([`TraceForwarder::stream`]), pre-batched chunks
/// ([`TraceForwarder::send_batch`]) or recorded trace files
/// ([`TraceForwarder::forward_file`]).
pub struct TraceForwarder {
    stream: TcpStream,
    inbuf: MsgBuf,
    /// Remaining credit in frame bytes. Signed: the protocol lets one
    /// in-flight frame overdraw the allowance so frames larger than the
    /// window still make progress.
    credit: i64,
    chunk_bytes: u32,
    handshake_timeout: Duration,
    frame: Vec<u8>,
    stats: ForwarderStats,
    /// Set once the server's `FIN_ACK` arrives.
    fin_ack: Option<u64>,
    /// `igm_net_credit_stall_nanos` when a registry is attached
    /// ([`TraceForwarder::attach_metrics`]); disabled otherwise — the
    /// stall duration is already measured for [`ForwarderStats`], so the
    /// histogram adds no clock reads of its own.
    stall_hist: Histogram,
    /// The negotiated per-chunk trace codec ([`ForwarderConfig::codec`]).
    codec: Codec,
    /// Encoder predictor tables, persistent across frames (each frame
    /// still resets them — holding the allocation is what matters).
    predictors: Box<Predictors>,
    /// Codec byte counters / encode-latency histogram, bound by
    /// [`TraceForwarder::attach_metrics`].
    codec_metrics: CodecMetrics,
}

impl TraceForwarder {
    /// Connects and performs the handshake under default transport
    /// parameters: `session` describes the tenant exactly as a local
    /// [`MonitorPool::open_session`](igm_runtime::MonitorPool::open_session)
    /// call would.
    pub fn connect(
        addr: impl ToSocketAddrs,
        session: &SessionConfig,
    ) -> Result<TraceForwarder, NetError> {
        TraceForwarder::connect_with(addr, session, ForwarderConfig::default())
    }

    /// Connects with explicit transport parameters.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        session: &SessionConfig,
        cfg: ForwarderConfig,
    ) -> Result<TraceForwarder, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut fwd = TraceForwarder {
            stream,
            inbuf: MsgBuf::new(),
            credit: 0,
            chunk_bytes: cfg.chunk_bytes,
            handshake_timeout: cfg.handshake_timeout,
            frame: Vec::new(),
            stats: ForwarderStats::default(),
            fin_ack: None,
            stall_hist: Histogram::disabled(),
            codec: cfg.codec,
            predictors: Box::new(Predictors::new()),
            codec_metrics: CodecMetrics::detached(),
        };
        let hello = wire::hello_message(NET_VERSION, cfg.codec.wire(), session);
        fwd.push_bytes(&hello)?;
        // The WELCOME carries the initial allowance; harvest() records it
        // as a plain credit grant.
        let deadline = Instant::now() + fwd.handshake_timeout;
        while fwd.credit == 0 {
            if !fwd.harvest()? && Instant::now() >= deadline {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for the server handshake",
                )));
            }
            if fwd.credit == 0 {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        Ok(fwd)
    }

    /// Publishes this forwarder's credit-stall durations to `registry` as
    /// the `igm_net_credit_stall_nanos` histogram (e.g. the co-located
    /// pool's registry in a loopback deployment, or a client-side registry
    /// served by its own [`StatsServer`](igm_obs::StatsServer)), together
    /// with the `igm_codec_*` byte counters and encode-latency histogram.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.stall_hist = registry.histogram(
            "igm_net_credit_stall_nanos",
            "Wall-clock wait for a server credit grant, per stall",
        );
        self.codec_metrics = CodecMetrics::register(registry);
    }

    /// Client-side counters so far.
    pub fn stats(&self) -> ForwarderStats {
        self.stats
    }

    /// The chunking granularity ([`ForwarderConfig::chunk_bytes`]).
    pub fn chunk_bytes(&self) -> u32 {
        self.chunk_bytes
    }

    /// Sends one pre-batched chunk as one frame, waiting for credit if the
    /// allowance is spent. An empty batch sends nothing.
    pub fn send_batch(&mut self, batch: &TraceBatch) -> Result<(), NetError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.frame.clear();
        let started = self.codec_metrics.start_encode();
        encode_frame_with(&mut self.predictors, self.codec, &mut self.frame, batch);
        self.codec_metrics.stop_encode(started);
        self.codec_metrics.count_frame(batch.len() as u64, self.frame.len() as u64);
        self.wait_for_credit()?;
        let mut header = Vec::with_capacity(MSG_HEADER_BYTES);
        wire::push_header(&mut header, wire::msg::CHUNK, self.frame.len());
        self.push_bytes(&header)?;
        let frame = std::mem::take(&mut self.frame);
        let r = self.push_bytes(&frame);
        self.frame = frame;
        r?;
        self.credit -= self.frame.len() as i64;
        self.stats.chunks += 1;
        self.stats.records += batch.len() as u64;
        self.stats.frame_bytes += self.frame.len() as u64;
        Ok(())
    }

    /// Streams a whole record iterator, chunked at
    /// [`TraceForwarder::chunk_bytes`] — the remote twin of
    /// [`SessionHandle::stream`](igm_runtime::SessionHandle::stream).
    pub fn stream(&mut self, trace: impl IntoIterator<Item = TraceEntry>) -> Result<(), NetError> {
        let mut chunker = chunks(trace, self.chunk_bytes);
        let mut batch = TraceBatch::new();
        while chunker.next_into_batch(&mut batch) {
            self.send_batch(&batch)?;
        }
        Ok(())
    }

    /// Forwards a recorded trace stream chunk-for-chunk (each recorded
    /// frame becomes one wire chunk, so the server reproduces the capture's
    /// batch structure). Returns the records forwarded.
    pub fn forward_reader<R: Read>(
        &mut self,
        reader: &mut TraceReader<R>,
    ) -> Result<u64, NetError> {
        let mut batch = TraceBatch::new();
        let mut records = 0u64;
        while reader.read_chunk_into_batch(&mut batch)? {
            records += batch.len() as u64;
            self.send_batch(&batch)?;
        }
        Ok(records)
    }

    /// Forwards the recorded trace file at `path`.
    pub fn forward_file(&mut self, path: impl AsRef<Path>) -> Result<u64, NetError> {
        let file = File::open(path)?;
        let mut reader = TraceReader::new(BufReader::new(file))?;
        self.forward_reader(&mut reader)
    }

    /// Clean shutdown: sends `FIN` with the final lane stats, waits for
    /// the server's `FIN_ACK`, and reports both sides' counts.
    pub fn finish(mut self) -> Result<ForwarderReport, NetError> {
        let fin = wire::fin_message(&FinStats {
            chunks: self.stats.chunks,
            records: self.stats.records,
            frame_bytes: self.stats.frame_bytes,
            credit_stalls: self.stats.credit_stalls,
        });
        self.push_bytes(&fin)?;
        let deadline = Instant::now() + self.handshake_timeout;
        loop {
            if let Some(records) = self.fin_ack {
                return Ok(ForwarderReport { stats: self.stats, server_records: records });
            }
            match self.harvest() {
                Ok(true) => {}
                Ok(false) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for FIN_ACK",
                        )));
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                // The server may close the socket right after flushing the
                // FIN_ACK; if the ack landed in the same harvest that saw
                // the EOF, the shutdown was clean — only fail when the
                // connection died *without* acknowledging.
                Err(e) => {
                    if let Some(records) = self.fin_ack {
                        return Ok(ForwarderReport { stats: self.stats, server_records: records });
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Blocks (polling) until the credit allowance is positive.
    fn wait_for_credit(&mut self) -> Result<(), NetError> {
        self.harvest()?;
        if self.credit > 0 {
            return Ok(());
        }
        self.stats.credit_stalls += 1;
        let start = Instant::now();
        while self.credit <= 0 {
            if !self.harvest()? {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        let stalled = start.elapsed().as_nanos() as u64;
        self.stats.credit_stall_nanos += stalled;
        self.stall_hist.record(stalled);
        Ok(())
    }

    /// Drains whatever server messages are available without blocking.
    /// Returns whether anything was processed.
    fn harvest(&mut self) -> Result<bool, NetError> {
        let mut processed = false;
        loop {
            while let Some((ty, range)) = self.inbuf.peek_message()? {
                let payload_end = range.end;
                match ty {
                    wire::msg::WELCOME => {
                        let grant = wire::decode_welcome(self.inbuf.bytes(range))?;
                        self.credit += grant as i64;
                    }
                    wire::msg::CREDIT => {
                        let grant = wire::decode_credit(self.inbuf.bytes(range))?;
                        self.credit += grant as i64;
                    }
                    wire::msg::FIN_ACK => {
                        self.fin_ack = Some(wire::decode_fin_ack(self.inbuf.bytes(range))?);
                    }
                    wire::msg::ERROR => {
                        let reason = wire::decode_error(self.inbuf.bytes(range))?;
                        return Err(NetError::Rejected(reason));
                    }
                    _ => return Err(NetError::Malformed("unexpected message type from server")),
                }
                self.inbuf.consume(payload_end);
                processed = true;
            }
            match self.inbuf.fill_from(&mut self.stream, 16 * 1024)? {
                Fill::Bytes(_) => continue,
                Fill::WouldBlock => return Ok(processed),
                Fill::Eof => {
                    return Err(NetError::Disconnected(if self.inbuf.has_buffered() {
                        "server closed mid-message"
                    } else {
                        "server closed the connection"
                    }))
                }
            }
        }
    }

    /// Writes all of `bytes` on the nonblocking socket, harvesting server
    /// messages while the send buffer is full (so a credit grant can never
    /// deadlock against a large in-flight chunk).
    fn push_bytes(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let mut sent = 0usize;
        while sent < bytes.len() {
            match self.stream.write(&bytes[sent..]) {
                Ok(0) => return Err(NetError::Disconnected("socket closed while sending")),
                Ok(n) => sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.harvest()?;
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(())
    }
}
