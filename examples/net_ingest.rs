//! Distributed monitoring over loopback: one ingest server, four remote
//! tenants, one `MonitorPool`.
//!
//! Each "remote" application connects with a `TraceForwarder`, handshakes
//! its tenant configuration (lifeguard, accelerators, premarked regions),
//! and streams its record log as codec frames under the server's byte
//! credits — the software analogue of the paper's application-core →
//! lifeguard-core log transport, stretched across a socket. The server
//! thread accepts all four connections and multiplexes them through the
//! shared `Ingestor` into the pool. One tenant carries a buggy epilogue;
//! the example re-runs it locally and aborts unless the network path
//! reproduced the local violations and dispatch stats exactly (this is
//! the CI loopback smoke). Run with:
//!
//! ```sh
//! cargo run --release --example net_ingest
//! ```

use igm::isa::{Annotation, MemRef, OpClass, Reg, TraceEntry};
use igm::lifeguards::LifeguardKind;
use igm::net::{ForwarderConfig, IngestServer, NetServerConfig, TraceForwarder};
use igm::obs::EventKind;
use igm::runtime::{stats_table, MonitorPool, PoolConfig, SessionConfig};
use igm::span::Stage;
use igm::workload::Benchmark;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

const N: u64 = 100_000;
const CHUNK: u32 = 16 * 1024;

/// A one-shot HTTP/1.1 GET against the pool's stats endpoint, returning
/// the response body (what `curl http://<addr><path>` would print).
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("stats endpoint reachable");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let body_at = response.find("\r\n\r\n").expect("header terminator") + 4;
    response[body_at..].to_owned()
}

/// An out-of-bounds heap read appended to gzip's trace: AddrCheck must
/// flag it identically on the local and network paths.
fn buggy_gzip() -> Vec<TraceEntry> {
    let mut trace: Vec<TraceEntry> = Benchmark::Gzip.trace(N).collect();
    trace.extend([
        TraceEntry::annot(0x9100_0000, Annotation::Malloc { base: 0x0a00_0000, size: 64 }),
        TraceEntry::op(
            0x9100_0008,
            OpClass::MemToReg { src: MemRef::word(0x0a00_0040), rd: Reg::Edx },
        ),
        TraceEntry::annot(0x9100_0014, Annotation::Free { base: 0x0a00_0000 }),
    ]);
    trace
}

fn tenant_cfg(bench: Benchmark, kind: LifeguardKind) -> SessionConfig {
    SessionConfig::new(bench.name(), kind).synthetic().premark(&bench.profile().premark_regions())
}

fn main() {
    let pool = MonitorPool::new(PoolConfig { chunk_bytes: CHUNK, ..PoolConfig::with_workers(4) });

    // Local reference run of the buggy tenant, for the equivalence check.
    let local = {
        let session = pool.open_session(tenant_cfg(Benchmark::Gzip, LifeguardKind::AddrCheck));
        session.stream(buggy_gzip()).expect("pool alive");
        session.finish()
    };
    assert!(!local.violations.is_empty(), "the epilogue must trip AddrCheck locally");

    // Live observability: every counter/histogram below is scrapeable over
    // HTTP for the whole run.
    let mut stats_srv = pool.serve_stats("127.0.0.1:0").expect("stats endpoint");
    let stats_addr = stats_srv.local_addr();

    let server =
        IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("bound");
    println!("ingest server on {addr}; 4 tenants x {N} records over loopback");
    println!("live stats on http://{stats_addr}/metrics (+ /stats.json, /events.json)\n");

    let tenants: [(Benchmark, LifeguardKind); 4] = [
        (Benchmark::Gzip, LifeguardKind::AddrCheck),
        (Benchmark::Mcf, LifeguardKind::MemCheck),
        (Benchmark::Gcc, LifeguardKind::TaintCheck),
        (Benchmark::Vpr, LifeguardKind::TaintCheckDetailed),
    ];
    let clients: Vec<_> = tenants
        .into_iter()
        .map(|(bench, kind)| {
            let registry = pool.metrics().clone();
            let recorder = pool.recorder().expect("spans on by default").clone();
            std::thread::spawn(move || {
                let fcfg = ForwarderConfig { chunk_bytes: CHUNK, ..ForwarderConfig::default() };
                let mut fwd = TraceForwarder::connect_with(addr, &tenant_cfg(bench, kind), fcfg)
                    .expect("connect");
                // Loopback co-location: the clients' credit-stall
                // histogram lands on the same stats endpoint as the pool,
                // and each forwarder is a span origin on the pool's
                // flight recorder — sampled frames chain client and
                // server stages under one flow.
                fwd.attach_metrics(&registry);
                fwd.attach_spans(&recorder);
                if matches!(bench, Benchmark::Gzip) {
                    fwd.stream(buggy_gzip()).expect("stream");
                } else {
                    fwd.stream(bench.trace(N)).expect("stream");
                }
                (bench.name(), fwd.finish().expect("clean FIN"))
            })
        })
        .collect();

    // A fifth tenant handshakes, streams a little, then vanishes without
    // FIN — the server must fail only that lane, and say why.
    let flaky = std::thread::spawn(move || {
        let cfg = SessionConfig::new("flaky", LifeguardKind::AddrCheck)
            .synthetic()
            .premark(&Benchmark::Gzip.profile().premark_regions());
        let mut fwd = TraceForwarder::connect(addr, &cfg).expect("connect");
        fwd.stream(Benchmark::Gzip.trace(1_000)).expect("stream");
        drop(fwd); // abrupt disconnect, no FIN
    });

    // One thread: accept, handshake, credit flow, multiplexed ingest.
    let report = server.serve_connections(clients.len() + 1);
    let client_reports: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    flaky.join().unwrap();

    assert_eq!(report.accepted, 5, "all five tenants handshake");
    assert!(report.rejected.is_empty(), "rejected: {:?}", report.rejected);
    assert_eq!(
        report.ingest.errors.len(),
        1,
        "only the flaky lane fails: {:?}",
        report.ingest.errors
    );
    let (failed_lane, lane_err) = &report.ingest.errors[0];
    assert_eq!(failed_lane, "flaky");
    println!("flaky lane failed as expected: {lane_err}\n");
    print!("{}", stats_table(&report.ingest.sessions));

    println!("\nlane        batches   records   deferred   pending-polls");
    for (name, lane) in &report.ingest.lanes {
        println!(
            "{name:<10} {:>8} {:>9} {:>10} {:>15}",
            lane.batches, lane.records, lane.deferred_sends, lane.pending_polls
        );
    }
    println!("\nclient      chunks    frame-bytes   credit-stalls   stall-ms");
    for (name, r) in &client_reports {
        println!(
            "{name:<10} {:>7} {:>13} {:>15} {:>10.1}",
            r.stats.chunks,
            r.stats.frame_bytes,
            r.stats.credit_stalls,
            r.stats.credit_stall_nanos as f64 / 1e6,
        );
        assert_eq!(r.server_records, r.stats.records, "{name}: records lost in flight");
    }

    // The network transport must be semantically invisible: the remote
    // gzip run reproduces the local one exactly.
    let remote = report
        .ingest
        .sessions
        .iter()
        .find(|s| s.name == Benchmark::Gzip.name())
        .expect("gzip session");
    assert_eq!(remote.records, local.records, "record counts diverge");
    assert_eq!(remote.violations, local.violations, "violations diverge");
    assert_eq!(remote.dispatch, local.dispatch, "dispatch stats diverge");
    println!(
        "\nnetwork path == local path for gzip/AddrCheck: {} records, {} violations, \
         dispatch stats identical",
        remote.records,
        remote.violations.len()
    );

    // Scrape the live endpoint (the pool is still running) and check the
    // Prometheus counter against the pool's own stats view — same
    // registry, so they must agree exactly.
    let metrics = http_get(stats_addr, "/metrics");
    let records_line = metrics
        .lines()
        .find(|l| l.starts_with("igm_pool_records_total"))
        .expect("scrape has the pool record counter");
    println!("\nscrape of http://{stats_addr}/metrics while the pool is live:");
    println!("{records_line}");
    let scraped: u64 = records_line.rsplit(' ').next().unwrap().parse().expect("counter value");
    assert_eq!(scraped, pool.stats().records, "scraped counter != pool stats");
    for line in metrics.lines().filter(|l| l.contains("igm_dispatch_batch_nanos_count")) {
        println!("{line}");
    }

    // The registry's lifecycle-event ring: the flaky lane's failure is a
    // first-class, timestamped event with the error string attached.
    let events = pool.events().since(0);
    println!("\nlifecycle events recorded: {} ({} dropped)", events.next_seq, events.dropped);
    for ev in &events.events {
        match &ev.kind {
            EventKind::LaneFailure { lane, error } => {
                println!("  [{:>4}] lane_failure    {lane}: {error}", ev.seq)
            }
            EventKind::Violation { tenant, detail, .. } => {
                println!("  [{:>4}] violation       {tenant}: {detail}", ev.seq)
            }
            EventKind::HandshakeReject { peer, reason } => {
                println!("  [{:>4}] handshake_reject {peer}: {reason}", ev.seq)
            }
            _ => {}
        }
    }
    assert!(
        events
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::LaneFailure { lane, .. } if lane == "flaky")),
        "the flaky lane's failure must be narrated in the event ring"
    );

    // End-to-end frame provenance: each forwarder was a span origin, so
    // sampled frames chained client-side and server-side stages under one
    // flow/seq across the wire. Pull one such chain and print its
    // waterfall.
    let recorder = pool.recorder().expect("spans on by default");
    let spans = recorder.snapshot();
    let sent = spans
        .iter()
        .filter(|r| r.stage == Stage::ClientSend)
        .min_by_key(|r| (r.tag.flow, r.tag.seq))
        .expect("a sampled frame left a client_send stage");
    let chain = recorder.chain(sent.tag);
    let stages: Vec<Stage> = chain.iter().map(|r| r.stage).collect();
    for want in [Stage::ClientSend, Stage::ServerIngest, Stage::ChannelWait, Stage::Dispatch] {
        assert!(stages.contains(&want), "chain {stages:?} is missing {want:?}");
    }
    println!(
        "\nspan waterfall: flow {} frame {} joins client and server stages",
        sent.tag.flow, sent.tag.seq
    );
    let t0 = chain[0].t_start;
    for r in &chain {
        println!(
            "  {:<13} at {:>9.1}us for {:>8.1}us  [{}]",
            r.stage.name(),
            (r.t_start - t0) as f64 / 1e3,
            r.nanos() as f64 / 1e3,
            r.track.label(),
        );
    }

    // /trace renders the same recorder as Chrome trace-event JSON —
    // paste it into chrome://tracing or ui.perfetto.dev as-is.
    let trace = http_get(stats_addr, "/trace");
    assert!(trace.contains("\"traceEvents\""), "Chrome trace JSON envelope");
    assert!(trace.contains("client_send"), "client-side stages exported");
    assert!(trace.contains("server_ingest"), "server-side stages exported");
    println!(
        "\n/trace scrape: {} bytes of Chrome trace JSON with client- and server-side stages",
        trace.len()
    );

    stats_srv.stop();
    pool.shutdown();
}
