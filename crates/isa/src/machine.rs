//! A functional interpreter for [`Program`]s that emits retirement traces.
//!
//! The machine plays the role of the *monitored application core* in the
//! log-based architecture: it executes instructions over a byte-granular
//! sparse memory and eight 32-bit registers, and appends one [`TraceEntry`]
//! per retired instruction (two for `call`, which both stores the return
//! address and transfers control).
//!
//! The machine is *permissive by design*: loads from unmapped memory return
//! zero and stores allocate pages on demand. Catching memory bugs is the
//! lifeguards' job, not the substrate's — a buggy program must be able to
//! keep running so the monitoring machinery can observe it.

use crate::asm::{Addressing, Instr, Program};
use crate::trace::{
    Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, RegSet, TraceEntry, TraceOp,
};
use crate::{Reg, NUM_REGS};
use std::collections::{HashMap, VecDeque};
use std::fmt;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-granular 32-bit memory.
///
/// Unwritten locations read as zero.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        let page =
            self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Reads `size` bytes little-endian, zero-extended to 32 bits.
    pub fn read(&self, addr: u32, size: MemSize) -> u32 {
        let mut v = 0u32;
        for i in 0..size.bytes() {
            v |= (self.read_u8(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `v` little-endian.
    pub fn write(&mut self, addr: u32, size: MemSize, v: u32) {
        for i in 0..size.bytes() {
            self.write_u8(addr.wrapping_add(i), (v >> (8 * i)) as u8);
        }
    }

    /// Number of 4 KiB pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An indirect control transfer targeted an address outside the program
    /// (or not instruction-aligned) — typically the visible effect of a
    /// successful control-flow hijack.
    WildJump { pc: u32, target: u32 },
    /// The configured step limit was exceeded (runaway loop).
    StepLimit { limit: u64 },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WildJump { pc, target } => {
                write!(f, "wild jump at pc {pc:#010x} to {target:#010x}")
            }
            ExecError::StepLimit { limit } => write!(f, "step limit of {limit} exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The machine retired one instruction and can continue.
    Continue,
    /// The machine executed `halt` (or had already halted).
    Halted,
}

/// The functional application core.
#[derive(Debug)]
pub struct Machine {
    program: Program,
    regs: [u32; NUM_REGS],
    /// Index of the next instruction to execute, or `None` once halted.
    next: Option<usize>,
    memory: Memory,
    /// Values of the last flag-setting comparison `(lhs, rhs)`.
    flags: (u32, u32),
    /// Register that sourced the last flag-setting operation, for MemCheck's
    /// conditional-test-input checks.
    flag_src: Option<Reg>,
    /// Bytes delivered by `ReadInput` annotations, front first.
    input: VecDeque<u8>,
    trace: Vec<TraceEntry>,
    steps: u64,
    step_limit: u64,
}

/// Default runaway-loop guard.
pub const DEFAULT_STEP_LIMIT: u64 = 10_000_000;

impl Machine {
    /// Creates a machine positioned at the first instruction of `program`,
    /// with all registers zero and empty memory.
    pub fn new(program: Program) -> Machine {
        Machine {
            program,
            regs: [0; NUM_REGS],
            next: Some(0),
            memory: Memory::new(),
            flags: (0, 0),
            flag_src: None,
            input: VecDeque::new(),
            trace: Vec::new(),
            steps: 0,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Replaces the runaway-loop guard (default [`DEFAULT_STEP_LIMIT`]).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Queues bytes to be delivered by subsequent `ReadInput` annotations.
    /// If the queue underruns, the filler byte `0xaa` is used.
    pub fn feed_input(&mut self, bytes: &[u8]) {
        self.input.extend(bytes.iter().copied());
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Sets a register (useful for establishing the initial stack pointer).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.index()] = v;
    }

    /// Immutable view of memory.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable view of memory (e.g. to pre-populate data sections).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Consumes the accumulated trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Vec<TraceEntry> {
        std::mem::take(&mut self.trace)
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.steps
    }

    fn ea(&self, a: &Addressing) -> u32 {
        let mut addr = a.disp;
        if let Some(b) = a.base {
            addr = addr.wrapping_add(self.reg(b));
        }
        if let Some(i) = a.index {
            addr = addr.wrapping_add(self.reg(i).wrapping_mul(a.scale as u32));
        }
        addr
    }

    fn memref(&self, a: &Addressing) -> MemRef {
        MemRef::new(self.ea(a), a.size)
    }

    fn push_entry(&mut self, pc: u32, op: TraceOp, addr_regs: RegSet) {
        self.trace.push(TraceEntry { pc, op, addr_regs });
    }

    fn jump_to(&mut self, pc: u32, target: u32) -> Result<(), ExecError> {
        match self.program.index_of_pc(target) {
            Some(idx) => {
                self.next = Some(idx);
                Ok(())
            }
            None => {
                self.next = None;
                Err(ExecError::WildJump { pc, target })
            }
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::WildJump`] when an indirect transfer leaves the
    /// program, and [`ExecError::StepLimit`] when the step guard trips. The
    /// trace accumulated up to (and including) the faulting instruction
    /// remains available through [`Machine::trace`].
    pub fn step(&mut self) -> Result<Step, ExecError> {
        let Some(idx) = self.next else {
            return Ok(Step::Halted);
        };
        if self.steps >= self.step_limit {
            return Err(ExecError::StepLimit { limit: self.step_limit });
        }
        self.steps += 1;
        let pc = self.program.pc_of(idx);
        let instr = *self.program.instr(idx);
        // Fallthrough by default; control flow overrides below.
        self.next = Some(idx + 1);
        if idx + 1 >= self.program.len() {
            self.next = None; // running off the end halts
        }

        match instr {
            Instr::MovRI { rd, imm } => {
                self.regs[rd.index()] = imm;
                self.push_entry(pc, TraceOp::Op(OpClass::ImmToReg { rd }), RegSet::EMPTY);
            }
            Instr::MovRR { rd, rs } => {
                self.regs[rd.index()] = self.reg(rs);
                self.push_entry(pc, TraceOp::Op(OpClass::RegToReg { rs, rd }), RegSet::EMPTY);
            }
            Instr::Load { rd, src } => {
                let m = self.memref(&src);
                self.regs[rd.index()] = self.memory.read(m.addr, m.size);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::MemToReg { src: m, rd }),
                    RegSet::from_regs(src.regs()),
                );
            }
            Instr::Store { dst, rs } => {
                let m = self.memref(&dst);
                self.memory.write(m.addr, m.size, self.reg(rs));
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::RegToMem { rs, dst: m }),
                    RegSet::from_regs(dst.regs()),
                );
            }
            Instr::StoreI { dst, imm } => {
                let m = self.memref(&dst);
                self.memory.write(m.addr, m.size, imm);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ImmToMem { dst: m }),
                    RegSet::from_regs(dst.regs()),
                );
            }
            Instr::Movs { size } => {
                let src = MemRef::new(self.reg(Reg::Esi), size);
                let dst = MemRef::new(self.reg(Reg::Edi), size);
                let v = self.memory.read(src.addr, size);
                self.memory.write(dst.addr, size, v);
                self.regs[Reg::Esi.index()] = src.addr.wrapping_add(size.bytes());
                self.regs[Reg::Edi.index()] = dst.addr.wrapping_add(size.bytes());
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::MemToMem { src, dst }),
                    RegSet::from_regs([Reg::Esi, Reg::Edi]),
                );
            }
            Instr::AluRR { op, rd, rs } => {
                let v = op.apply(self.reg(rd), self.reg(rs));
                self.regs[rd.index()] = v;
                self.flags = (v, 0);
                self.flag_src = Some(rd);
                self.push_entry(pc, TraceOp::Op(OpClass::DestRegOpReg { rs, rd }), RegSet::EMPTY);
            }
            Instr::AluRM { op, rd, src } => {
                let m = self.memref(&src);
                let v = op.apply(self.reg(rd), self.memory.read(m.addr, m.size));
                self.regs[rd.index()] = v;
                self.flags = (v, 0);
                self.flag_src = Some(rd);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::DestRegOpMem { src: m, rd }),
                    RegSet::from_regs(src.regs()),
                );
            }
            Instr::AluMR { op, dst, rs } => {
                let m = self.memref(&dst);
                let v = op.apply(self.memory.read(m.addr, m.size), self.reg(rs));
                self.memory.write(m.addr, m.size, v);
                self.flags = (v, 0);
                self.flag_src = None;
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::DestMemOpReg { rs, dst: m }),
                    RegSet::from_regs(dst.regs()),
                );
            }
            Instr::AluRI { op, rd } => {
                let v = op.apply(self.reg(rd));
                self.regs[rd.index()] = v;
                self.flags = (v, 0);
                self.flag_src = Some(rd);
                self.push_entry(pc, TraceOp::Op(OpClass::RegSelf { rd }), RegSet::EMPTY);
            }
            Instr::AluMI { op, dst } => {
                let m = self.memref(&dst);
                let v = op.apply(self.memory.read(m.addr, m.size));
                self.memory.write(m.addr, m.size, v);
                self.flags = (v, 0);
                self.flag_src = None;
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::MemSelf { dst: m }),
                    RegSet::from_regs(dst.regs()),
                );
            }
            Instr::CmpRR { rd, rs } => {
                self.flags = (self.reg(rd), self.reg(rs));
                self.flag_src = Some(rd);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ReadOnly {
                        src: None,
                        reads: RegSet::from_regs([rd, rs]),
                    }),
                    RegSet::EMPTY,
                );
            }
            Instr::CmpRI { rd, imm } => {
                self.flags = (self.reg(rd), imm);
                self.flag_src = Some(rd);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ReadOnly { src: None, reads: RegSet::from_regs([rd]) }),
                    RegSet::EMPTY,
                );
            }
            Instr::CmpRM { rd, src } => {
                let m = self.memref(&src);
                self.flags = (self.reg(rd), self.memory.read(m.addr, m.size));
                self.flag_src = Some(rd);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ReadOnly { src: Some(m), reads: RegSet::from_regs([rd]) }),
                    RegSet::from_regs(src.regs()),
                );
            }
            Instr::Xchg { ra, rb } => {
                self.regs.swap(ra.index(), rb.index());
                let set = RegSet::from_regs([ra, rb]);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::Other {
                        reads: set,
                        writes: set,
                        mem_read: None,
                        mem_write: None,
                    }),
                    RegSet::EMPTY,
                );
            }
            Instr::Push { rs } => {
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                self.regs[Reg::Esp.index()] = sp;
                let dst = MemRef::word(sp);
                self.memory.write(sp, MemSize::B4, self.reg(rs));
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::RegToMem { rs, dst }),
                    RegSet::from_regs([Reg::Esp]),
                );
            }
            Instr::PushI { imm } => {
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                self.regs[Reg::Esp.index()] = sp;
                let dst = MemRef::word(sp);
                self.memory.write(sp, MemSize::B4, imm);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ImmToMem { dst }),
                    RegSet::from_regs([Reg::Esp]),
                );
            }
            Instr::Pop { rd } => {
                let sp = self.reg(Reg::Esp);
                let src = MemRef::word(sp);
                self.regs[rd.index()] = self.memory.read(sp, MemSize::B4);
                self.regs[Reg::Esp.index()] = sp.wrapping_add(4);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::MemToReg { src, rd }),
                    RegSet::from_regs([Reg::Esp]),
                );
            }
            Instr::Jmp { target } => {
                self.next = Some(self.program.resolve(target));
                self.push_entry(pc, TraceOp::Ctrl(CtrlOp::Direct), RegSet::EMPTY);
            }
            Instr::Jcc { cond, target } => {
                if cond.eval(self.flags.0, self.flags.1) {
                    self.next = Some(self.program.resolve(target));
                }
                self.push_entry(
                    pc,
                    TraceOp::Ctrl(CtrlOp::CondBranch { input: self.flag_src }),
                    RegSet::EMPTY,
                );
            }
            Instr::JmpIndReg { r } => {
                let target = self.reg(r);
                self.push_entry(
                    pc,
                    TraceOp::Ctrl(CtrlOp::Indirect { target: JumpTarget::Reg(r) }),
                    RegSet::EMPTY,
                );
                self.jump_to(pc, target)?;
            }
            Instr::JmpIndMem { src } => {
                let m = self.memref(&src);
                let target = self.memory.read(m.addr, m.size);
                self.push_entry(
                    pc,
                    TraceOp::Ctrl(CtrlOp::Indirect { target: JumpTarget::Mem(m) }),
                    RegSet::from_regs(src.regs()),
                );
                self.jump_to(pc, target)?;
            }
            Instr::Call { target } => {
                let ret_pc = self.program.pc_of(idx) + crate::asm::INSTR_BYTES;
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                self.regs[Reg::Esp.index()] = sp;
                self.memory.write(sp, MemSize::B4, ret_pc);
                // The return-address store and the transfer are one retired
                // instruction but two trace records (see module docs).
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ImmToMem { dst: MemRef::word(sp) }),
                    RegSet::from_regs([Reg::Esp]),
                );
                self.push_entry(pc, TraceOp::Ctrl(CtrlOp::Direct), RegSet::EMPTY);
                self.next = Some(self.program.resolve(target));
            }
            Instr::CallIndReg { r } => {
                let ret_pc = self.program.pc_of(idx) + crate::asm::INSTR_BYTES;
                let sp = self.reg(Reg::Esp).wrapping_sub(4);
                self.regs[Reg::Esp.index()] = sp;
                self.memory.write(sp, MemSize::B4, ret_pc);
                self.push_entry(
                    pc,
                    TraceOp::Op(OpClass::ImmToMem { dst: MemRef::word(sp) }),
                    RegSet::from_regs([Reg::Esp]),
                );
                let target = self.reg(r);
                self.push_entry(
                    pc,
                    TraceOp::Ctrl(CtrlOp::Indirect { target: JumpTarget::Reg(r) }),
                    RegSet::EMPTY,
                );
                self.jump_to(pc, target)?;
            }
            Instr::Ret => {
                let sp = self.reg(Reg::Esp);
                let slot = MemRef::word(sp);
                let target = self.memory.read(sp, MemSize::B4);
                self.regs[Reg::Esp.index()] = sp.wrapping_add(4);
                self.push_entry(
                    pc,
                    TraceOp::Ctrl(CtrlOp::Ret { slot }),
                    RegSet::from_regs([Reg::Esp]),
                );
                self.jump_to(pc, target)?;
            }
            Instr::Annot(a) => {
                if let Annotation::ReadInput { base, len } = a {
                    for i in 0..len {
                        let b = self.input.pop_front().unwrap_or(0xaa);
                        self.memory.write_u8(base.wrapping_add(i), b);
                    }
                }
                self.push_entry(pc, TraceOp::Annot(a), RegSet::EMPTY);
            }
            Instr::Halt => {
                self.next = None;
                return Ok(Step::Halted);
            }
        }

        Ok(if self.next.is_some() { Step::Continue } else { Step::Halted })
    }

    /// Runs until `halt`, the program end, or an error.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`]; the partial trace stays available
    /// through [`Machine::trace`].
    pub fn run(&mut self) -> Result<(), ExecError> {
        loop {
            match self.step()? {
                Step::Continue => {}
                Step::Halted => return Ok(()),
            }
        }
    }

    /// Runs to completion and hands back the full trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`].
    pub fn run_to_completion(&mut self) -> Result<Vec<TraceEntry>, ExecError> {
        self.run()?;
        Ok(self.take_trace())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{Addressing, BinOp, Cond, ProgramBuilder, SelfOp};

    fn word(addr: u32) -> Addressing {
        Addressing::abs(addr, MemSize::B4)
    }

    #[test]
    fn memory_round_trip_and_default_zero() {
        let mut m = Memory::new();
        assert_eq!(m.read(0x1234, MemSize::B4), 0);
        m.write(0x1234, MemSize::B4, 0xdead_beef);
        assert_eq!(m.read(0x1234, MemSize::B4), 0xdead_beef);
        assert_eq!(m.read_u8(0x1234), 0xef); // little endian
        assert_eq!(m.read(0x1236, MemSize::B2), 0xdead);
        m.write(0x1235, MemSize::B1, 0x00);
        assert_eq!(m.read(0x1234, MemSize::B4), 0xdead_00ef);
    }

    #[test]
    fn memory_cross_page_access() {
        let mut m = Memory::new();
        m.write(0x0fff, MemSize::B4, 0x0403_0201);
        assert_eq!(m.read_u8(0x0fff), 0x01);
        assert_eq!(m.read_u8(0x1000), 0x02);
        assert_eq!(m.read(0x0fff, MemSize::B4), 0x0403_0201);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = ProgramBuilder::new(0x1000);
        b.mov_ri(Reg::Eax, 10);
        b.mov_ri(Reg::Ecx, 32);
        b.alu_rr(BinOp::Add, Reg::Eax, Reg::Ecx);
        b.alu_ri(SelfOp::Shl(1), Reg::Eax);
        b.halt();
        let mut m = Machine::new(b.build());
        let trace = m.run_to_completion().unwrap();
        assert_eq!(m.reg(Reg::Eax), 84);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[2].op, TraceOp::Op(OpClass::DestRegOpReg { rs: Reg::Ecx, rd: Reg::Eax }));
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut b = ProgramBuilder::new(0x1000);
        b.mov_ri(Reg::Eax, 0x55aa);
        b.store(word(0x9000), Reg::Eax);
        b.load(Reg::Edx, word(0x9000));
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Edx), 0x55aa);
        let reads: Vec<_> = m.trace().iter().filter_map(|e| e.mem_read()).collect();
        let writes: Vec<_> = m.trace().iter().filter_map(|e| e.mem_write()).collect();
        assert_eq!(reads, vec![MemRef::word(0x9000)]);
        assert_eq!(writes, vec![MemRef::word(0x9000)]);
    }

    #[test]
    fn small_loads_zero_extend() {
        let mut b = ProgramBuilder::new(0);
        b.mov_ri(Reg::Eax, 0xffff_ffff);
        b.store(word(0x9000), Reg::Eax);
        b.load(Reg::Ecx, Addressing::abs(0x9000, MemSize::B1));
        b.load(Reg::Edx, Addressing::abs(0x9000, MemSize::B2));
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Ecx), 0xff);
        assert_eq!(m.reg(Reg::Edx), 0xffff);
    }

    #[test]
    fn loop_with_conditional_branch() {
        // sum 1..=5 via a countdown loop
        let mut b = ProgramBuilder::new(0x2000);
        let top = b.label();
        b.mov_ri(Reg::Eax, 0); // sum
        b.mov_ri(Reg::Ecx, 5); // i
        b.bind(top);
        b.alu_rr(BinOp::Add, Reg::Eax, Reg::Ecx);
        b.alu_ri(SelfOp::SubI(1), Reg::Ecx);
        b.cmp_ri(Reg::Ecx, 0);
        b.jcc(Cond::Ne, top);
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Eax), 15);
        // 2 setup + 5 iterations * 4 instructions
        assert_eq!(m.retired(), 2 + 5 * 4 + 1);
    }

    #[test]
    fn addressing_with_base_index_scale() {
        let mut b = ProgramBuilder::new(0);
        b.mov_ri(Reg::Ebx, 0x9000);
        b.mov_ri(Reg::Esi, 3);
        b.store_imm(Addressing::base_index(Reg::Ebx, Reg::Esi, 4, 8, MemSize::B4), 42);
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.memory().read(0x9000 + 3 * 4 + 8, MemSize::B4), 42);
        let store = &m.trace()[2];
        assert!(store.addr_regs.contains(Reg::Ebx));
        assert!(store.addr_regs.contains(Reg::Esi));
    }

    #[test]
    fn push_pop_call_ret() {
        let mut b = ProgramBuilder::new(0x3000);
        let func = b.label();
        let after = b.label();
        b.mov_ri(Reg::Esp, 0xbfff_0000);
        b.mov_ri(Reg::Eax, 11);
        b.push(Reg::Eax);
        b.call(func);
        b.pop(Reg::Ebx); // pops the argument back
        b.jmp(after);
        b.bind(func);
        b.mov_ri(Reg::Edx, 99);
        b.ret();
        b.bind(after);
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Edx), 99);
        assert_eq!(m.reg(Reg::Ebx), 11);
        assert_eq!(m.reg(Reg::Esp), 0xbfff_0000);
        // the call produced both a store record and a ctrl record at one pc
        let call_pc = 0x3000 + 3 * 4;
        let at_call: Vec<_> = m.trace().iter().filter(|e| e.pc == call_pc).collect();
        assert_eq!(at_call.len(), 2);
    }

    #[test]
    fn movs_copies_and_advances() {
        let mut b = ProgramBuilder::new(0);
        b.mov_ri(Reg::Esi, 0x9000);
        b.mov_ri(Reg::Edi, 0xa000);
        b.store_imm(word(0x9000), 0x1111);
        b.store_imm(word(0x9004), 0x2222);
        b.movs(MemSize::B4);
        b.movs(MemSize::B4);
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.memory().read(0xa000, MemSize::B4), 0x1111);
        assert_eq!(m.memory().read(0xa004, MemSize::B4), 0x2222);
        assert_eq!(m.reg(Reg::Esi), 0x9008);
        assert_eq!(m.reg(Reg::Edi), 0xa008);
    }

    #[test]
    fn xchg_swaps_and_traces_other() {
        let mut b = ProgramBuilder::new(0);
        b.mov_ri(Reg::Eax, 1);
        b.mov_ri(Reg::Ecx, 2);
        b.xchg(Reg::Eax, Reg::Ecx);
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Eax), 2);
        assert_eq!(m.reg(Reg::Ecx), 1);
        assert!(matches!(m.trace()[2].op, TraceOp::Op(OpClass::Other { .. })));
    }

    #[test]
    fn wild_indirect_jump_reports_error_but_keeps_trace() {
        let mut b = ProgramBuilder::new(0x1000);
        b.mov_ri(Reg::Eax, 0xdead_0000);
        b.jmp_ind_reg(Reg::Eax);
        b.halt();
        let mut m = Machine::new(b.build());
        let err = m.run().unwrap_err();
        assert_eq!(err, ExecError::WildJump { pc: 0x1004, target: 0xdead_0000 });
        assert_eq!(m.trace().len(), 2); // mov + the indirect jump record
    }

    #[test]
    fn read_input_annotation_writes_input_bytes() {
        let mut b = ProgramBuilder::new(0);
        b.annot(Annotation::ReadInput { base: 0x9000, len: 4 });
        b.load(Reg::Eax, word(0x9000));
        b.halt();
        let mut m = Machine::new(b.build());
        m.feed_input(&[0x01, 0x02, 0x03, 0x04]);
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Eax), 0x0403_0201);
    }

    #[test]
    fn read_input_underrun_uses_filler() {
        let mut b = ProgramBuilder::new(0);
        b.annot(Annotation::ReadInput { base: 0x9000, len: 2 });
        b.load(Reg::Eax, Addressing::abs(0x9000, MemSize::B2));
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        assert_eq!(m.reg(Reg::Eax), 0xaaaa);
    }

    #[test]
    fn step_limit_guards_runaway_loops() {
        let mut b = ProgramBuilder::new(0);
        let top = b.label();
        b.bind(top);
        b.jmp(top);
        let mut m = Machine::new(b.build());
        m.set_step_limit(100);
        assert_eq!(m.run().unwrap_err(), ExecError::StepLimit { limit: 100 });
    }

    #[test]
    fn running_off_the_end_halts() {
        let mut b = ProgramBuilder::new(0);
        b.mov_ri(Reg::Eax, 1);
        let mut m = Machine::new(b.build());
        assert_eq!(m.step().unwrap(), Step::Halted);
        assert_eq!(m.step().unwrap(), Step::Halted); // idempotent
    }

    #[test]
    fn cond_branch_records_flag_source() {
        let mut b = ProgramBuilder::new(0);
        let l = b.label();
        b.mov_ri(Reg::Edx, 1);
        b.cmp_ri(Reg::Edx, 1);
        b.jcc(Cond::Eq, l);
        b.bind(l);
        b.halt();
        let mut m = Machine::new(b.build());
        m.run().unwrap();
        let branch = m.trace().iter().find_map(|e| match e.op {
            TraceOp::Ctrl(CtrlOp::CondBranch { input }) => Some(input),
            _ => None,
        });
        assert_eq!(branch, Some(Some(Reg::Edx)));
    }
}
