//! The compact binary record codec and chunk framing.
//!
//! # Record encoding
//!
//! One [`TraceEntry`] encodes as:
//!
//! ```text
//! tag          1 byte   bits 0..6: flattened variant id (0..=25)
//!                       bit 7: entry carries a non-empty addr_regs set
//! pc           varint   zigzag(pc − prev_pc)   (delta stream per chunk)
//! [addr_regs]  1 byte   RegSet bitmap, present iff tag bit 7
//! payload      …        variant-specific, see below
//! ```
//!
//! Varints are LEB128 (7 value bits per byte, high bit = continuation).
//! Memory references share one per-chunk address-delta stream: a `MemRef`
//! encodes as `varint(zigzag(addr − prev_addr) << 2 | size_code)` with
//! size codes 0/1/2 for 1/2/4-byte accesses; address-valued annotation
//! payloads (malloc base, lock word, …) ride the same stream without the
//! size bits. Both delta streams reset at every chunk boundary, so chunks
//! decode independently.
//!
//! Registers encode as their dense index; register pairs pack into one
//! byte (`rs << 4 | rd`). Optional fields are announced by a flags byte.
//!
//! # Chunk framing
//!
//! A trace file is a 8-byte header (`b"IGMT"`, `u32` LE version) followed
//! by frames:
//!
//! ```text
//! records      u32 LE   entries in this chunk (> 0)
//! payload_len  u32 LE   encoded payload bytes (> 0)
//! checksum     u32 LE   FNV-1a-32 over the payload bytes
//! payload      payload_len bytes
//! ```
//!
//! A clean EOF at a frame boundary ends the trace; anything else —
//! truncated header or payload, checksum mismatch, zero-record or
//! zero-length frames, trailing payload bytes, out-of-range field
//! encodings — is a [`TraceError::Corrupt`] with the file offset. One
//! frame per transport batch keeps capture and replay chunk-for-chunk
//! identical with the live session that produced the file.

use igm_isa::{codes, MemSize, Reg, TraceEntry};
use igm_lba::TraceBatch;
use std::fmt;
use std::io::{self, Read, Write};

/// The four magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"IGMT";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound accepted for one frame's payload, so a corrupt length field
/// cannot drive a multi-gigabyte allocation before the checksum catches it.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// Bytes of frame header preceding every frame payload (`records`,
/// `payload_len`, `checksum`, each `u32` LE).
pub const FRAME_HEADER_BYTES: usize = 12;

/// Errors produced while reading or writing a trace stream.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// Structural damage at `offset` bytes into the stream.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not an igm trace stream (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v} (reader speaks {FORMAT_VERSION})")
            }
            TraceError::Corrupt { offset, reason } => {
                write!(f, "corrupt trace stream at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// FNV-1a-32 over `bytes` — cheap, dependency-free, and plenty to catch
/// the torn writes and bit rot the framing guards against (it is not a
/// cryptographic integrity check).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Per-chunk delta-coder state (both streams reset at chunk boundaries).
#[derive(Debug, Default, Clone, Copy)]
struct CodecState {
    prev_pc: u32,
    prev_addr: u32,
}

/// Decode cursor over one chunk's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Stream offset of `bytes[0]`, for error reporting.
    base: u64,
}

impl<'a> Cursor<'a> {
    fn corrupt<T>(&self, reason: &'static str) -> Result<T, TraceError> {
        Err(TraceError::Corrupt { offset: self.base + self.pos as u64, reason })
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.corrupt("payload ends inside a record"),
        }
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return self.corrupt("varint overflows 64 bits");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// One register index byte, validated.
    fn reg(&mut self) -> Result<u8, TraceError> {
        let b = self.byte()?;
        if Reg::try_from_index(b as usize).is_none() {
            return self.corrupt("register index out of range");
        }
        Ok(b)
    }

    /// One packed register pair (`rs << 4 | rd`), both nibbles validated.
    fn reg_pair(&mut self) -> Result<u8, TraceError> {
        let b = self.byte()?;
        if Reg::try_from_index((b >> 4) as usize).is_none()
            || Reg::try_from_index((b & 0x0f) as usize).is_none()
        {
            return self.corrupt("register index out of range");
        }
        Ok(b)
    }

    /// One optional-register byte: a register index or [`codes::NO_REG`].
    fn opt_reg(&mut self) -> Result<u8, TraceError> {
        let b = self.byte()?;
        if b != codes::NO_REG && Reg::try_from_index(b as usize).is_none() {
            return self.corrupt("register index out of range");
        }
        Ok(b)
    }

    /// Decodes one sized memory reference off the shared address stream,
    /// returning the absolute address and its dense size code — exactly
    /// one [`TraceBatch`] `addrs`/`sizes` slot.
    fn mem_parts(&mut self, st: &mut CodecState) -> Result<(u32, u8), TraceError> {
        let v = self.varint()?;
        let size_code = (v & 0x3) as u8;
        if MemSize::from_code(size_code).is_none() {
            return self.corrupt("memory access size code out of range");
        }
        let addr = self.resolve_addr(st, unzigzag(v >> 2))?;
        Ok((addr, size_code))
    }

    fn addr(&mut self, st: &mut CodecState) -> Result<u32, TraceError> {
        let delta = unzigzag(self.varint()?);
        self.resolve_addr(st, delta)
    }

    fn resolve_addr(&self, st: &mut CodecState, delta: i64) -> Result<u32, TraceError> {
        match u32::try_from(st.prev_addr as i64 + delta) {
            Ok(addr) => {
                st.prev_addr = addr;
                Ok(addr)
            }
            Err(_) => self.corrupt("address delta leaves the 32-bit address space"),
        }
    }

    fn u32_varint(&mut self) -> Result<u32, TraceError> {
        match u32::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => self.corrupt("32-bit field encoded with more than 32 bits"),
        }
    }
}

// ---------------------------------------------------------------------------
// Record encode/decode.
// ---------------------------------------------------------------------------

/// Tag bit set when the entry carries a non-empty `addr_regs` set.
const TAG_ADDR_REGS: u8 = 0x80;

fn put_mem_parts(out: &mut Vec<u8>, st: &mut CodecState, addr: u32, size_code: u8) {
    let delta = zigzag(addr as i64 - st.prev_addr as i64);
    put_varint(out, delta << 2 | size_code as u64);
    st.prev_addr = addr;
}

fn put_addr(out: &mut Vec<u8>, st: &mut CodecState, addr: u32) {
    put_varint(out, zigzag(addr as i64 - st.prev_addr as i64));
    st.prev_addr = addr;
}

/// Encodes one chunk's worth of [`TraceBatch`] columns into `out`. The
/// record tags are the batch's `codes` column (plus the addr-regs bit),
/// the pc and address delta streams are the `pcs` and `addrs` columns
/// re-delta'd, and payload bytes come straight off the `regs`/`flags`
/// columns — the wire format and the columnar layout correspond
/// stream-for-stream, so this is a set of cursor walks, not a per-record
/// re-match of the trace vocabulary.
fn encode_batch(out: &mut Vec<u8>, batch: &TraceBatch) {
    let mut st = CodecState::default();
    let pcs = batch.pcs();
    let rcodes = batch.codes();
    let aregs = batch.addr_regs_bits();
    let regs = batch.reg_bytes();
    let flags = batch.flag_bytes();
    let addrs = batch.addrs();
    let sizes = batch.size_codes();
    let vals = batch.vals();
    let (mut ai, mut vi) = (0usize, 0usize);
    macro_rules! mem {
        () => {{
            put_mem_parts(out, &mut st, addrs[ai], sizes[ai]);
            ai += 1;
        }};
    }
    macro_rules! plain_addr {
        () => {{
            put_addr(out, &mut st, addrs[ai]);
            ai += 1;
        }};
    }
    macro_rules! val {
        () => {{
            let v = vals[vi];
            vi += 1;
            v
        }};
    }
    for i in 0..batch.len() {
        let code = rcodes[i];
        let areg = aregs[i];
        out.push(code | if areg != 0 { TAG_ADDR_REGS } else { 0 });
        put_varint(out, zigzag(pcs[i] as i64 - st.prev_pc as i64));
        st.prev_pc = pcs[i];
        if areg != 0 {
            out.push(areg);
        }
        match code {
            codes::IMM_TO_REG | codes::REG_SELF => out.push(regs[i] & 0x0f),
            codes::IMM_TO_MEM | codes::MEM_SELF => mem!(),
            codes::REG_TO_REG | codes::DEST_REG_OP_REG => out.push(regs[i]),
            codes::REG_TO_MEM | codes::DEST_MEM_OP_REG => {
                out.push(regs[i] & 0x0f);
                mem!();
            }
            codes::MEM_TO_REG | codes::DEST_REG_OP_MEM => {
                mem!();
                out.push(regs[i] & 0x0f);
            }
            codes::MEM_TO_MEM => {
                mem!();
                mem!();
            }
            codes::READ_ONLY => {
                out.push(flags[i]);
                out.push(regs[i]);
                if flags[i] & 1 != 0 {
                    mem!();
                }
            }
            codes::OTHER => {
                out.push(flags[i]);
                out.push(regs[i]);
                out.push(val!() as u8);
                if flags[i] & 1 != 0 {
                    mem!();
                }
                if flags[i] & 2 != 0 {
                    mem!();
                }
            }
            codes::CTRL_DIRECT => {}
            codes::CTRL_INDIRECT => {
                if flags[i] & 1 != 0 {
                    out.push(1);
                    mem!();
                } else {
                    out.push(0);
                    out.push(regs[i] & 0x0f);
                }
            }
            codes::CTRL_COND => out.push(regs[i]),
            codes::CTRL_RET | codes::ANN_PRINTF => mem!(),
            codes::ANN_MALLOC | codes::ANN_READ_INPUT => {
                plain_addr!();
                put_varint(out, val!() as u64);
            }
            codes::ANN_FREE | codes::ANN_LOCK | codes::ANN_UNLOCK => plain_addr!(),
            codes::ANN_SYSCALL => {
                out.push(flags[i]);
                if flags[i] & 1 != 0 {
                    out.push(regs[i] & 0x0f);
                }
                if flags[i] & 2 != 0 {
                    mem!();
                }
            }
            codes::ANN_THREAD_SWITCH | codes::ANN_THREAD_EXIT => put_varint(out, val!() as u64),
            c => unreachable!("invalid field code {c} in TraceBatch"),
        }
    }
}

/// Decodes one record from the chunk payload **directly into** `out`'s
/// columns: tag byte → `codes`, pc delta → `pcs`, payload bytes →
/// `regs`/`flags`, the shared address-delta stream → `addrs`/`sizes`,
/// immediates → `vals`. No intermediate `TraceEntry` is materialized; the
/// wire streams and the columns line up one-to-one.
fn decode_record(
    cur: &mut Cursor<'_>,
    st: &mut CodecState,
    out: &mut TraceBatch,
) -> Result<(), TraceError> {
    let tag = cur.byte()?;
    let pc_delta = unzigzag(cur.varint()?);
    let pc = match u32::try_from(st.prev_pc as i64 + pc_delta) {
        Ok(pc) => pc,
        Err(_) => return cur.corrupt("pc delta leaves the 32-bit address space"),
    };
    st.prev_pc = pc;
    let addr_regs = if tag & TAG_ADDR_REGS != 0 {
        let bits = cur.byte()?;
        if bits == 0 {
            return cur.corrupt("addr_regs flag set but bitmap empty");
        }
        bits
    } else {
        0
    };
    let code = tag & !TAG_ADDR_REGS;
    let mut regs = 0u8;
    let mut flags = 0u8;
    macro_rules! mem {
        () => {{
            let (addr, size_code) = cur.mem_parts(st)?;
            out.push_raw_addr(addr, size_code);
        }};
    }
    macro_rules! plain_addr {
        () => {{
            let addr = cur.addr(st)?;
            out.push_raw_addr(addr, 2);
        }};
    }
    match code {
        codes::IMM_TO_REG | codes::REG_SELF => regs = cur.reg()?,
        codes::IMM_TO_MEM | codes::MEM_SELF => mem!(),
        codes::REG_TO_REG | codes::DEST_REG_OP_REG => regs = cur.reg_pair()?,
        codes::REG_TO_MEM | codes::DEST_MEM_OP_REG => {
            regs = cur.reg()?;
            mem!();
        }
        codes::MEM_TO_REG | codes::DEST_REG_OP_MEM => {
            mem!();
            regs = cur.reg()?;
        }
        codes::MEM_TO_MEM => {
            mem!();
            mem!();
        }
        codes::READ_ONLY => {
            flags = cur.byte()?;
            if flags > 1 {
                return cur.corrupt("read_only flags byte out of range");
            }
            regs = cur.byte()?;
            if flags & 1 != 0 {
                mem!();
            }
        }
        codes::OTHER => {
            flags = cur.byte()?;
            if flags > 3 {
                return cur.corrupt("other flags byte out of range");
            }
            regs = cur.byte()?;
            out.push_raw_val(cur.byte()? as u32);
            if flags & 1 != 0 {
                mem!();
            }
            if flags & 2 != 0 {
                mem!();
            }
        }
        codes::CTRL_DIRECT => {}
        codes::CTRL_INDIRECT => match cur.byte()? {
            0 => regs = cur.reg()?,
            1 => {
                flags = 1;
                mem!();
            }
            _ => return cur.corrupt("jump target kind out of range"),
        },
        codes::CTRL_COND => regs = cur.opt_reg()?,
        codes::CTRL_RET | codes::ANN_PRINTF => mem!(),
        codes::ANN_MALLOC | codes::ANN_READ_INPUT => {
            plain_addr!();
            out.push_raw_val(cur.u32_varint()?);
        }
        codes::ANN_FREE | codes::ANN_LOCK | codes::ANN_UNLOCK => plain_addr!(),
        codes::ANN_SYSCALL => {
            flags = cur.byte()?;
            if flags > 3 {
                return cur.corrupt("syscall flags byte out of range");
            }
            regs = if flags & 1 != 0 { cur.reg()? } else { codes::NO_REG };
            if flags & 2 != 0 {
                mem!();
            }
        }
        codes::ANN_THREAD_SWITCH | codes::ANN_THREAD_EXIT => out.push_raw_val(cur.u32_varint()?),
        _ => return cur.corrupt("unknown record tag"),
    }
    out.push_raw_record(pc, code, addr_regs, regs, flags);
    Ok(())
}

// ---------------------------------------------------------------------------
// Single-frame encode/decode (shared by the writer/reader and `igm-net`,
// whose wire protocol carries these frames verbatim).
// ---------------------------------------------------------------------------

/// Appends one complete frame — header plus encoded payload — for `batch`
/// to `out`. An empty batch appends nothing (the format has no empty
/// frames). This is the single canonical frame encoder:
/// [`TraceWriter::write_chunk_batch`] writes its output to the stream, and
/// `igm-net` ships it verbatim inside chunk messages.
pub fn encode_frame(out: &mut Vec<u8>, batch: &TraceBatch) {
    if batch.is_empty() {
        return;
    }
    let start = out.len();
    out.resize(start + FRAME_HEADER_BYTES, 0);
    encode_batch(out, batch);
    let records = u32::try_from(batch.len()).expect("batch fits a u32 record count");
    let payload = start + FRAME_HEADER_BYTES;
    let len = u32::try_from(out.len() - payload).expect("frame payload fits a u32 length");
    let sum = checksum(&out[payload..]);
    out[start..start + 4].copy_from_slice(&records.to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&len.to_le_bytes());
    out[start + 8..start + 12].copy_from_slice(&sum.to_le_bytes());
}

/// Validates one frame header's fields (shared by every decode path).
/// `offset` is the header's position in the stream, for error reporting.
pub(crate) fn validate_frame_header(records: u32, len: u32, offset: u64) -> Result<(), TraceError> {
    if records == 0 {
        return Err(TraceError::Corrupt { offset, reason: "zero-record frame" });
    }
    if len == 0 {
        return Err(TraceError::Corrupt { offset, reason: "zero-length frame payload" });
    }
    if len > MAX_PAYLOAD_BYTES {
        return Err(TraceError::Corrupt {
            offset,
            reason: "frame payload length exceeds the format bound",
        });
    }
    // Every record encodes to at least two bytes (tag + pc varint), so a
    // count inconsistent with the payload length is corruption. The
    // checksum covers only the payload, not the header — this check must
    // precede any length-driven allocation, or a flipped count field could
    // drive a multi-gigabyte allocation instead of a typed error.
    if records as u64 * 2 > len as u64 {
        return Err(TraceError::Corrupt {
            offset,
            reason: "record count inconsistent with frame payload length",
        });
    }
    Ok(())
}

/// Verifies a frame payload's checksum and decodes its records into
/// `out`'s columns (appended; callers clear first if they want a fresh
/// batch). `payload_at` is the payload's stream offset for error
/// reporting.
fn decode_frame_payload(
    records: u32,
    sum: u32,
    payload: &[u8],
    payload_at: u64,
    out: &mut TraceBatch,
) -> Result<(), TraceError> {
    if checksum(payload) != sum {
        return Err(TraceError::Corrupt { offset: payload_at, reason: "frame checksum mismatch" });
    }
    let mut cur = Cursor { bytes: payload, pos: 0, base: payload_at };
    let mut st = CodecState::default();
    for _ in 0..records {
        decode_record(&mut cur, &mut st, out)?;
    }
    if cur.pos != payload.len() {
        return Err(TraceError::Corrupt {
            offset: payload_at + cur.pos as u64,
            reason: "frame payload has trailing bytes",
        });
    }
    Ok(())
}

/// Decodes exactly one complete frame from the start of `bytes` into
/// `out`'s columns (cleared first), returning the bytes consumed. The
/// frame must be whole and `bytes` must hold nothing else: truncation and
/// trailing bytes are both [`TraceError::Corrupt`]. `stream_offset` is
/// where `bytes[0]` sits in the surrounding stream, for error reporting —
/// the inverse of [`encode_frame`], used by `igm-net` to decode the frame
/// carried in one chunk message.
pub fn decode_frame(
    bytes: &[u8],
    stream_offset: u64,
    out: &mut TraceBatch,
) -> Result<usize, TraceError> {
    out.clear();
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(TraceError::Corrupt {
            offset: stream_offset + bytes.len() as u64,
            reason: "stream ends inside a frame header",
        });
    }
    let records = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let sum = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    validate_frame_header(records, len, stream_offset)?;
    let payload_at = stream_offset + FRAME_HEADER_BYTES as u64;
    let total = FRAME_HEADER_BYTES + len as usize;
    if bytes.len() < total {
        return Err(TraceError::Corrupt {
            offset: stream_offset + bytes.len() as u64,
            reason: "stream ends inside a frame payload",
        });
    }
    if bytes.len() > total {
        return Err(TraceError::Corrupt {
            offset: stream_offset + total as u64,
            reason: "frame payload has trailing bytes",
        });
    }
    decode_frame_payload(records, sum, &bytes[FRAME_HEADER_BYTES..total], payload_at, out)?;
    Ok(total)
}

// ---------------------------------------------------------------------------
// Writer / reader.
// ---------------------------------------------------------------------------

/// Streaming encoder: one [`TraceWriter::write_chunk`] call per transport
/// batch produces one frame. The encode staging buffer is reused across
/// chunks.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    /// Conversion arena for the array-of-structs [`TraceWriter::write_chunk`]
    /// compatibility path (reused across chunks).
    scratch: TraceBatch,
    chunks: u64,
    records: u64,
    /// Frame bytes written after the file header (headers + payloads).
    stream_bytes: u64,
    /// Frame-offset index built as frames are written, when requested via
    /// [`TraceWriter::with_index`] (opt-in: long-lived tee/capture
    /// writers that never read it should not accumulate an entry per
    /// frame forever).
    index: Option<crate::index::TraceIndex>,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header and readies the encoder.
    pub fn new(mut w: W) -> io::Result<TraceWriter<W>> {
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            w,
            buf: Vec::new(),
            scratch: TraceBatch::new(),
            chunks: 0,
            records: 0,
            stream_bytes: 0,
            index: None,
        })
    }

    /// Like [`TraceWriter::new`], but also builds the frame-offset index
    /// as frames are written ([`TraceWriter::index`]) — byte-identical to
    /// what [`crate::index::TraceIndex::scan`] would rebuild from the
    /// finished stream, at one small entry per frame.
    pub fn with_index(w: W) -> io::Result<TraceWriter<W>> {
        let mut writer = TraceWriter::new(w)?;
        writer.index = Some(crate::index::TraceIndex::new());
        Ok(writer)
    }

    /// Encodes one columnar [`TraceBatch`] as one frame — the canonical
    /// encoder: the batch's delta-friendly columns are re-delta'd straight
    /// onto the wire ([`encode_frame`]). An empty batch writes nothing
    /// (the format has no empty frames).
    pub fn write_chunk_batch(&mut self, batch: &TraceBatch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.buf.clear();
        encode_frame(&mut self.buf, batch);
        self.w.write_all(&self.buf)?;
        if let Some(index) = self.index.as_mut() {
            index.push_frame(8 + self.stream_bytes, batch.len() as u32);
        }
        self.chunks += 1;
        self.records += batch.len() as u64;
        self.stream_bytes += self.buf.len() as u64;
        Ok(())
    }

    /// Encodes an array-of-structs `batch` as one frame (compatibility
    /// wrapper: scatters the records into a reused column arena and
    /// encodes that, so there is exactly one encoder).
    pub fn write_chunk(&mut self, batch: &[TraceEntry]) -> io::Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_entries(batch.iter().copied());
        let r = self.write_chunk_batch(&scratch);
        self.scratch = scratch;
        r
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }

    /// Frames written so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records encoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded bytes written after the file header, frame headers included
    /// — the numerator of the bytes-per-record metric.
    pub fn stream_bytes(&self) -> u64 {
        self.stream_bytes
    }

    /// The frame-offset index accumulated so far (`None` unless the
    /// writer was opened with [`TraceWriter::with_index`]) — one entry
    /// per frame written, byte-identical to what
    /// [`crate::index::TraceIndex::scan`] rebuilds from the finished
    /// stream. Save it as a sidecar ([`crate::index::TraceIndex::save`])
    /// to enable seeking replays.
    pub fn index(&self) -> Option<&crate::index::TraceIndex> {
        self.index.as_ref()
    }
}

/// Streaming decoder over any [`Read`].
///
/// [`TraceReader::read_chunk_into`] decodes one frame into a caller-owned,
/// reusable buffer — the file-sourced twin of the runtime's batch-grain
/// ingest path.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    buf: Vec<u8>,
    /// Conversion arena for the array-of-structs
    /// [`TraceReader::read_chunk_into`] compatibility path.
    scratch: TraceBatch,
    offset: u64,
    chunks: u64,
    records: u64,
}

impl<R: Read> TraceReader<R> {
    /// Validates the file header and readies the decoder.
    pub fn new(mut r: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        let version = u32::from_le_bytes(ver);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(TraceReader {
            r,
            buf: Vec::new(),
            scratch: TraceBatch::new(),
            offset: 8,
            chunks: 0,
            records: 0,
        })
    }

    /// Decodes the next frame **directly into** `out`'s columns (cleared
    /// first) — the canonical decoder: no intermediate `Vec<TraceEntry>`
    /// is built, the frame's delta streams land in the batch's
    /// `pcs`/`addrs` columns one-to-one ([`decode_record`]). Returns
    /// `false` on a clean end of stream, `true` when `out` holds a chunk.
    pub fn read_chunk_into_batch(&mut self, out: &mut TraceBatch) -> Result<bool, TraceError> {
        out.clear();
        let mut header = [0u8; 12];
        match read_exact_or_eof(&mut self.r, &mut header) {
            Ok(0) => return Ok(false),
            Ok(n) if n < header.len() => {
                return Err(TraceError::Corrupt {
                    offset: self.offset + n as u64,
                    reason: "stream ends inside a frame header",
                })
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        let records = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let sum = u32::from_le_bytes(header[8..12].try_into().unwrap());
        validate_frame_header(records, len, self.offset)?;
        let payload_at = self.offset + FRAME_HEADER_BYTES as u64;
        self.buf.resize(len as usize, 0);
        match read_exact_or_eof(&mut self.r, &mut self.buf) {
            Ok(n) if n < len as usize => {
                return Err(TraceError::Corrupt {
                    offset: payload_at + n as u64,
                    reason: "stream ends inside a frame payload",
                })
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        decode_frame_payload(records, sum, &self.buf, payload_at, out)?;
        self.offset = payload_at + len as u64;
        self.chunks += 1;
        self.records += records as u64;
        Ok(true)
    }

    /// Decodes the next frame into an array-of-structs buffer
    /// (compatibility wrapper over
    /// [`TraceReader::read_chunk_into_batch`]: the columns are decoded
    /// once, then viewed back out as entries).
    pub fn read_chunk_into(&mut self, out: &mut Vec<TraceEntry>) -> Result<bool, TraceError> {
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let r = self.read_chunk_into_batch(&mut scratch);
        if let Ok(true) = r {
            out.extend(scratch.iter());
        }
        self.scratch = scratch;
        r
    }

    /// Decodes the whole remaining stream, chunk structure flattened.
    pub fn read_all(&mut self) -> Result<Vec<TraceEntry>, TraceError> {
        let mut all = Vec::new();
        let mut chunk = Vec::new();
        while self.read_chunk_into(&mut chunk)? {
            all.extend_from_slice(&chunk);
        }
        Ok(all)
    }

    /// Frames decoded so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl<R: Read + io::Seek> TraceReader<R> {
    /// Repositions the reader at the frame described by `entry` (an
    /// [`IndexEntry`](crate::index::IndexEntry) from a
    /// [`TraceIndex`](crate::index::TraceIndex)), so the next
    /// [`TraceReader::read_chunk_into_batch`] decodes that frame — no
    /// prefix decoding. Frames decode independently (both delta streams
    /// reset at frame boundaries), so any frame is a valid entry point.
    pub fn seek_to_frame(&mut self, entry: &crate::index::IndexEntry) -> Result<(), TraceError> {
        self.r.seek(io::SeekFrom::Start(entry.offset)).map_err(TraceError::Io)?;
        self.offset = entry.offset;
        Ok(())
    }
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF,
/// returns 0) and "some but not enough" (returns the short count) from
/// I/O errors.
pub(crate) fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Convenience: encodes `trace` into an in-memory buffer, one frame per
/// `chunk_bytes`-sized transport batch ([`igm_lba::chunks`]).
pub fn encode_to_vec(trace: impl IntoIterator<Item = TraceEntry>, chunk_bytes: u32) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    let mut chunker = igm_lba::chunks(trace, chunk_bytes);
    let mut batch = TraceBatch::new();
    while chunker.next_into_batch(&mut batch) {
        w.write_chunk_batch(&batch).expect("writing to a Vec cannot fail");
    }
    w.finish().expect("flushing a Vec cannot fail")
}

/// Convenience: decodes a whole in-memory trace stream.
pub fn decode_from_slice(bytes: &[u8]) -> Result<Vec<TraceEntry>, TraceError> {
    TraceReader::new(bytes)?.read_all()
}
