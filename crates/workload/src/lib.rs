//! Deterministic synthetic benchmark trace generators.
//!
//! The paper evaluates on SPEC2000-int binaries under Simics plus five
//! multithreaded programs (Table 3). Neither is available here, so this
//! crate generates *statistically shaped* retirement traces instead: each
//! benchmark is a weighted mix of instruction **idioms** (array scans, table
//! lookups, register-heavy compute loops, call frames, string copies,
//! pointer chases, …) with per-benchmark working-set sizes, locality
//! structure and annotation rates. See `DESIGN.md` for the substitution
//! argument: the three accelerators observe only stream statistics —
//! instruction-class mix (IT), address reuse (IF), and page-granular
//! footprint (M-TLB) — all of which the idiom mixes control.
//!
//! Generators are deterministic: the same benchmark and instruction budget
//! always produce the identical trace.
//!
//! # Example
//!
//! ```
//! use igm_workload::Benchmark;
//!
//! let trace: Vec<_> = Benchmark::Gzip.trace(10_000).collect();
//! assert_eq!(trace.len(), 10_000);
//! // Determinism: regenerating yields the identical stream.
//! let again: Vec<_> = Benchmark::Gzip.trace(10_000).collect();
//! assert_eq!(trace, again);
//! ```

pub mod file;
pub mod gen;
pub mod layout;
pub mod mt;
pub mod profile;

pub use file::{read_trace, write_trace, TraceFileSummary};
pub use gen::TraceGen;
pub use mt::{MtBenchmark, MtTraceGen};
pub use profile::{Idiom, Profile};

use std::fmt;

/// The eleven SPEC2000 integer benchmarks of the paper's single-threaded
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    Bzip2,
    Crafty,
    Eon,
    Gap,
    Gcc,
    Gzip,
    Mcf,
    Parser,
    Twolf,
    Vortex,
    Vpr,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::Bzip2,
        Benchmark::Crafty,
        Benchmark::Eon,
        Benchmark::Gap,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
    ];

    /// The benchmark's lowercase SPEC name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Crafty => "crafty",
            Benchmark::Eon => "eon",
            Benchmark::Gap => "gap",
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::Mcf => "mcf",
            Benchmark::Parser => "parser",
            Benchmark::Twolf => "twolf",
            Benchmark::Vortex => "vortex",
            Benchmark::Vpr => "vpr",
        }
    }

    /// The workload profile (idiom mix and memory model parameters).
    pub fn profile(self) -> Profile {
        profile::spec_profile(self)
    }

    /// A deterministic trace generator emitting `n` records.
    pub fn trace(self, n: u64) -> TraceGen {
        TraceGen::new(self.profile(), n, self as u64 + 1)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Benchmark::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Mcf.to_string(), "mcf");
    }
}
