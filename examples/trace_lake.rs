//! Capture several tenants into a trace lake, then answer forensic
//! questions from the sidecars alone: bitmap queries over the posting
//! indexes, a ±k record-neighborhood decode, the same queries over the
//! live `/lake/*` HTTP routes, and a windowed lifeguard replay around
//! one record of interest. Used as the CI capture→query→neighborhood
//! smoke step:
//!
//! ```sh
//! cargo run --release --example trace_lake
//! ```

use igm::lake::{LakeQuery, LakeRoutes, TraceLake};
use igm::lifeguards::LifeguardKind;
use igm::runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm::trace::{capture_to_lake, op_class, Dim};
use igm::workload::Benchmark;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    const N: u64 = 20_000;
    let dir = std::env::temp_dir().join(format!("igm-lake-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // ── Capture: three tenants, three lifeguards, one lake directory.
    let pool = MonitorPool::new(PoolConfig::with_workers(4));
    let tenants = [
        (Benchmark::Gzip, LifeguardKind::AddrCheck),
        (Benchmark::Mcf, LifeguardKind::MemCheck),
        (Benchmark::Parser, LifeguardKind::TaintCheck),
    ];
    for (bench, kind) in tenants {
        let cfg = SessionConfig::new(bench.name(), kind)
            .synthetic()
            .premark(&bench.profile().premark_regions());
        let mut cap = capture_to_lake(&pool, cfg, &dir).expect("open lake capture");
        cap.stream(bench.trace(N)).expect("stream tenant");
        cap.finish().expect("finalize capture");
    }

    // ── Catalog: every artifact pair keyed by its RecordId coordinates.
    let lake = Arc::new(TraceLake::open(&dir).expect("open lake"));
    println!("lake: {} traces under {}", lake.traces().len(), dir.display());
    for t in lake.traces() {
        println!(
            "  {:<8} tenant={:08x} trace={:08x} {:>6} records {:>5} B index ({:.3} B/record)",
            t.stem,
            t.tenant,
            t.trace,
            t.index.total_records(),
            t.index.posting_bytes(),
            t.index_bytes_per_record(),
        );
    }

    // ── Query: all gzip records touching one hot address page — answered
    // from the sidecar's bitmaps, no trace payload decoded.
    let gzip_mid =
        igm::span::RecordId::new(igm::span::tenant_id("gzip"), igm::span::trace_id("gzip"), N / 2);
    let probe = lake.neighborhood(gzip_mid, 64).expect("probe window");
    // Anchor the query on a store the trace actually contains.
    let page = probe
        .iter()
        .filter(|(_, e)| op_class::of(e.op.field_code()) == op_class::STORE)
        .find_map(|(_, e)| {
            let mut addr = None;
            e.op.for_each_addr(|a| addr = addr.or(Some(a)));
            addr
        })
        .expect("a 129-record window holds at least one store");
    let q = LakeQuery::new().page(page).include(Dim::OpClass, op_class::STORE);
    let hits = lake.query(Some("gzip"), &q, 10).expect("lake query");
    println!(
        "lake query hits: {} (stores on page 0x{:x}; {} frames evaluated, {} skipped by the planner)",
        hits.matched,
        page >> 12,
        hits.frames_visited,
        hits.frames_skipped
    );
    assert!(hits.matched > 0, "the probed page has at least its own store/load traffic");

    // ── Neighborhood: decode exactly the ±3 records around a hit (an
    // edge-safe one, so the window is the full 7 records).
    let focus =
        hits.hits.iter().copied().find(|id| id.seq >= 3 && id.seq + 4 <= N).unwrap_or(gzip_mid);
    let hood = lake.neighborhood(focus, 3).expect("neighborhood");
    println!("neighborhood records: {}", hood.len());
    for (seq, e) in &hood {
        let marker = if *seq == focus.seq { ">>" } else { "  " };
        println!("  {marker} seq {:>6}  pc 0x{:x}", seq, e.pc);
    }

    // ── The same answers over HTTP: mount the lake on the stats server.
    let registry = Arc::new(igm::obs::MetricsRegistry::new());
    let routes = LakeRoutes::new(Arc::clone(&lake), &registry);
    let mut server = igm::obs::StatsServer::serve_routes(
        "127.0.0.1:0",
        Arc::clone(&registry),
        None,
        vec![Arc::new(routes)],
    )
    .expect("serve lake routes");
    let addr = server.local_addr();
    let body = http_get(addr, &format!("/lake/query?tenant=gzip&page=0x{page:x}&op=store&limit=3"));
    println!("GET /lake/query -> {}", body.lines().last().unwrap_or(""));
    assert!(body.contains(&format!("\"matched\": {}", hits.matched)), "HTTP and API agree");
    let body = http_get(addr, &format!("/lake/query?around={focus}&k=3"));
    assert!(body.contains(&format!("\"count\": {}", hood.len())));
    server.stop();

    // ── Forensic replay: run a fresh lifeguard over just that window.
    let report = lake
        .replay_around(
            &pool,
            SessionConfig::new("inspect", LifeguardKind::AddrCheck).synthetic(),
            focus,
            8,
        )
        .expect("windowed replay");
    println!("windowed replay: {} records re-monitored around {}", report.records, focus);

    pool.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!("\ncapture -> query -> neighborhood forensics verified ✓");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect stats server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}
