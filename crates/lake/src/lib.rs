//! # igm-lake — the queryable trace lake
//!
//! The capture layer leaves per-tenant artifacts on disk: `<stem>.igmt`
//! trace files (compressed record frames) and `<stem>.igmx` sidecars
//! (frame directory + per-frame compressed-bitmap posting lists, see
//! [`igm_trace::postings`]). This crate turns a directory of those
//! artifacts into a *lake* a forensic question can be asked of:
//!
//! - [`catalog`] — [`TraceLake`]: discovers `(trace, sidecar)` pairs
//!   under one directory, loads (or rebuilds and saves) the `IGMX` v2
//!   posting index for each, and keys every trace by its
//!   [`igm_span::RecordId`] coordinates — `tenant = tenant_id(stem)`,
//!   `trace = trace_id(stem)` — so a record id surfaced by a violation
//!   event or a query seeks straight back into its artifact.
//! - [`query`] — [`LakeQuery`]: a conjunctive filter over the four
//!   posting dimensions (pc bucket, opcode class, address page,
//!   violation site) with comma-OR and `!`-NOT per dimension, plus an
//!   optional record-sequence range. Evaluation is pure bitmap algebra
//!   over the sidecar ([`igm_trace::FrameSet`] OR/AND/NOT per frame):
//!   **no trace payload is decoded** — frames whose postings cannot
//!   match are skipped from the directory alone.
//! - [`routes`] — [`LakeRoutes`]: an [`igm_obs::RouteHandler`] mounting
//!   `/lake/traces.json` and `/lake/query` on the stats server
//!   ([`igm_runtime::MonitorPool::serve_stats_routes`]), with
//!   `igm_lake_*` metrics on the shared registry.
//!
//! The only payload decoding the lake ever does is *neighborhood*
//! inspection: [`TraceLake::neighborhood`] seeks to the frame holding a
//! requested record (via the frame directory) and decodes just the
//! frames its ±k window touches; [`TraceLake::replay_around`] drives
//! the same window through a fresh lifeguard session
//! ([`igm_trace::replay_window`]).
//!
//! # Example
//!
//! ```
//! use igm_lake::{LakeQuery, TraceLake};
//! use igm_lifeguards::LifeguardKind;
//! use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
//! use igm_trace::{capture_to_lake, op_class};
//! use igm_workload::Benchmark;
//!
//! let dir = std::env::temp_dir().join("igm-lake-doc");
//! let pool = MonitorPool::new(PoolConfig::with_workers(2));
//! let cfg = SessionConfig::new("gzip", LifeguardKind::AddrCheck)
//!     .synthetic()
//!     .premark(&Benchmark::Gzip.profile().premark_regions());
//! let mut cap = capture_to_lake(&pool, cfg, &dir).unwrap();
//! cap.stream(Benchmark::Gzip.trace(2_000)).unwrap();
//! cap.finish().unwrap();
//! pool.shutdown();
//!
//! let lake = TraceLake::open(&dir).unwrap();
//! let q = LakeQuery::new().include(igm_trace::Dim::OpClass, op_class::STORE);
//! let hits = lake.query(Some("gzip"), &q, 10).unwrap();
//! assert!(hits.matched > 0); // answered from the sidecar alone
//! ```

#![deny(missing_docs)]

pub mod catalog;
pub mod query;
pub mod routes;

pub use catalog::{LakeError, LakeTrace, TraceLake};
pub use query::{DimTerms, LakeHits, LakeQuery};
pub use routes::LakeRoutes;
