//! `igm-obs` — unified observability for the instruction-grain monitor.
//!
//! The paper's argument is quantitative (event reductions, stalls,
//! slowdowns per lifeguard), so the monitor-of-monitors must be
//! observable *live*, not just via end-of-run reports. This crate is the
//! std-only layer the rest of the workspace hangs its telemetry on:
//!
//! - [`registry`] — the lock-free [`MetricsRegistry`]: striped
//!   [`Counter`]s (per-worker handle clones increment disjoint cache
//!   lines), [`Gauge`]s, and log₂-bucketed fixed-size [`Histogram`]s.
//!   Zero allocation and no locks on the record path — the same
//!   discipline the repo's `tests/alloc_free.rs` enforces for dispatch.
//! - [`events`] — the bounded [`EventRing`] of typed lifecycle events
//!   (session open/close, steal, lane failure, handshake reject,
//!   violation) with monotone sequence numbers.
//! - [`export`] — [`MetricsSnapshot::to_prometheus`] /
//!   [`MetricsSnapshot::to_json`] and the events-JSON rendering.
//! - [`server`] — [`StatsServer`], a one-thread `std::net` HTTP endpoint
//!   serving `/metrics`, `/stats.json`, `/events.json?since=N`, and —
//!   when a span [`igm_span::FlightRecorder`] is attached
//!   ([`StatsServer::serve_with`]) — `/spans.json?since=N` plus a
//!   Chrome trace-event `/trace` export.
//!
//! # Example
//!
//! ```
//! use igm_obs::{MetricsRegistry, StatsServer};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let records = registry.counter("igm_pool_records_total", "records processed");
//! records.add(42);
//!
//! let server = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
//! println!("scrape http://{}/metrics", server.local_addr());
//! // ... run the pool; drop the server to stop serving.
//! ```

#![deny(missing_docs)]

pub mod events;
pub mod export;
pub mod query;
pub mod registry;
pub mod server;

pub use events::{EventKind, EventRing, EventsSnapshot, ObsEvent};
pub use query::{Query, QueryError};
pub use registry::{
    bucket_index, bucket_upper_bound, Counter, CounterSample, Gauge, GaugeSample, Histogram,
    HistogramSample, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, COUNTER_STRIPES,
    HISTOGRAM_BUCKETS,
};
pub use server::{RouteHandler, RouteResponse, StatsServer};
