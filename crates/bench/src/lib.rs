//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§7), plus Criterion micro-benchmarks of the accelerator
//! hardware models.
//!
//! One binary per figure (run with `cargo run --release -p igm-bench --bin
//! <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig10` | per-benchmark slowdowns, LBA baseline vs optimized, all five lifeguards (+ Table 2 header, Table 3 workloads, §7.2 headline footer) |
//! | `fig11` | average slowdowns applying LMA, IT, IF one by one (16 bars) |
//! | `fig12_table` | reduced dynamic instructions (LMA), reduced update events (IT), reduced check events (IF) — min–max across benchmarks — plus the Figure 2 applicability matrix |
//! | `fig13` | (a) IT-reduced propagation events per benchmark; (b)/(c) IF sweeps over entries × associativity for combined/separate load-store categories |
//! | `fig14` | (a) M-TLB miss rate vs level-1 bits × entries (max and average); (b) fixed vs flexible level-1 sizing |
//! | `run_all` | all of the above in paper order |
//!
//! Record count defaults to 200k per run and scales with the `N`
//! environment variable (the paper uses SPEC test inputs under the same
//! constraint: simulation time).

use igm_lifeguards::LifeguardKind;
use igm_sim::{SimConfig, SimReport, Simulator};
use igm_workload::{Benchmark, MtBenchmark};

/// Records per simulation run (`N` env var, default 200k).
pub fn run_scale() -> u64 {
    std::env::var("N").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

/// Runs one lifeguard × config over its benchmark suite (SPEC-like for the
/// single-threaded lifeguards, Table 3 for LockSet), returning per-
/// benchmark reports.
pub fn run_suite(cfg: &SimConfig, n: u64) -> Vec<SimReport> {
    if cfg.lifeguard == LifeguardKind::LockSet {
        MtBenchmark::ALL
            .iter()
            .map(|b| Simulator::new(cfg.clone()).run_mt_benchmark(*b, n))
            .collect()
    } else {
        Benchmark::ALL.iter().map(|b| Simulator::new(cfg.clone()).run_benchmark(*b, n)).collect()
    }
}

/// Average slowdown of a suite (the paper averages arithmetically across
/// benchmarks).
pub fn average_slowdown(reports: &[SimReport]) -> f64 {
    reports.iter().map(|r| r.slowdown()).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_benchmarks() {
        let cfg = SimConfig::optimized(LifeguardKind::AddrCheck);
        let reports = run_suite(&cfg, 5_000);
        assert_eq!(reports.len(), Benchmark::ALL.len());
        let cfg = SimConfig::optimized(LifeguardKind::LockSet);
        let reports = run_suite(&cfg, 5_000);
        assert_eq!(reports.len(), MtBenchmark::ALL.len());
    }

    #[test]
    fn average_is_within_min_max() {
        let cfg = SimConfig::baseline(LifeguardKind::TaintCheck);
        let reports = run_suite(&cfg, 5_000);
        let avg = average_slowdown(&reports);
        let min = reports.iter().map(|r| r.slowdown()).fold(f64::MAX, f64::min);
        let max = reports.iter().map(|r| r.slowdown()).fold(0.0, f64::max);
        assert!(min <= avg && avg <= max);
    }
}
