//! Design-space exploration: the paper's PIN-based profiling study (§7.3).
//!
//! The paper instruments benchmark executables with PIN to obtain event
//! streams, then feeds them through *functional* models of the three
//! accelerators while sweeping design parameters. This crate does the same
//! with the synthetic workload traces and the functional models from
//! `igm-core`:
//!
//! * [`it_reduction`] — % of propagation (update) events removed by
//!   Inheritance Tracking (Figure 13(a), Figure 12 column 2);
//! * [`if_sweep`] — % of check events removed by Idempotent Filters while
//!   varying entry count and associativity, with loads+stores combined
//!   (AddrCheck-style, Figure 13(b)) or separate (LockSet-style,
//!   Figure 13(c));
//! * [`mtlb_sweep`] / [`mtlb_flexible`] — M-TLB miss rates while varying
//!   the level-1 index width and the entry count, for the fixed and the
//!   footprint-adaptive designs (Figure 14);
//! * [`lma_instr_reduction`] — % of lifeguard dynamic instructions removed
//!   by the `LMA` instruction (Figure 12 column 1), measured by running the
//!   lifeguard handlers with and without the M-TLB.

use igm_core::{
    AccelConfig, DispatchPipeline, IdempotentFilter, IfGeometry, IfOutcome, InheritanceTracker,
    ItConfig, MetadataTlb,
};
use igm_isa::TraceEntry;
use igm_lba::{extract_events, DeliveredEvent, Event, IfEventConfig};
use igm_lifeguards::{CostSink, LifeguardKind};
use igm_shadow::layout::ElemSize;
use igm_shadow::{choose_level1_bits, footprint_pages, ShadowLayout, SizingPolicy, TwoLevelShadow};
use std::collections::BTreeSet;

/// Fraction of propagation events absorbed by Inheritance Tracking for a
/// trace (the Figure 13(a) metric). Only events a propagation-tracking
/// lifeguard would register (everything but the self/read-only classes)
/// count as baseline deliveries, matching Figure 4's accounting.
pub fn it_reduction(trace: impl IntoIterator<Item = TraceEntry>, cfg: ItConfig) -> f64 {
    let mut it = InheritanceTracker::new(cfg);
    let mut raw = Vec::new();
    let mut out = Vec::new();
    let mut baseline = 0u64;
    let mut delivered = 0u64;
    for entry in trace {
        raw.clear();
        extract_events(&entry, &mut raw);
        for dev in &raw {
            match dev.event {
                Event::Prop(op) => {
                    use igm_isa::OpClass::*;
                    let registered =
                        !matches!(op, RegSelf { .. } | MemSelf { .. } | ReadOnly { .. });
                    if registered {
                        baseline += 1;
                    }
                    out.clear();
                    if let Event::Annot(_) = dev.event {
                        unreachable!();
                    }
                    it.process(dev.pc, dev.event, &mut out);
                    // Everything IT emits reaches the lifeguard: transformed
                    // propagation events, conflict materializations, and
                    // (MemCheck-style) eager source checks.
                    delivered += out.len() as u64;
                }
                Event::Annot(_) => {
                    out.clear();
                    it.flush_all(dev.pc, &mut out);
                    delivered += out.len() as u64;
                }
                _ => {}
            }
        }
    }
    if baseline == 0 {
        return 0.0;
    }
    1.0 - delivered as f64 / baseline as f64
}

/// Which memory-access check categorization an [`if_sweep`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// Loads and stores are the same check (AddrCheck/MemCheck,
    /// Figure 13(b)).
    Combined,
    /// Loads and stores are distinct checks (LockSet, Figure 13(c)).
    Separate,
}

/// Fraction of memory-access check events filtered by an Idempotent Filter
/// of the given geometry, with annotations invalidating the whole filter.
pub fn if_reduction(
    trace: impl IntoIterator<Item = TraceEntry>,
    geometry: IfGeometry,
    mode: CcMode,
) -> f64 {
    let mut filter = IdempotentFilter::new(geometry);
    let (read_cfg, write_cfg) = match mode {
        CcMode::Combined => (IfEventConfig::cacheable_addr(0), IfEventConfig::cacheable_addr(0)),
        CcMode::Separate => (IfEventConfig::cacheable_addr(1), IfEventConfig::cacheable_addr(2)),
    };
    let inval = IfEventConfig::invalidates_all();
    let mut raw = Vec::new();
    let mut checks = 0u64;
    let mut filtered = 0u64;
    for entry in trace {
        raw.clear();
        extract_events(&entry, &mut raw);
        for dev in &raw {
            let cfg = match dev.event {
                Event::MemRead(_) => &read_cfg,
                Event::MemWrite(_) => &write_cfg,
                Event::Annot(_) => {
                    filter.process(dev.pc, &dev.event, &inval);
                    continue;
                }
                _ => continue,
            };
            checks += 1;
            if filter.process(dev.pc, &dev.event, cfg) == IfOutcome::Filtered {
                filtered += 1;
            }
        }
    }
    if checks == 0 {
        0.0
    } else {
        filtered as f64 / checks as f64
    }
}

/// One Figure 13(b)/(c) sweep: reduction for every (entries, ways) pair.
/// `ways = 0` means fully associative.
pub fn if_sweep<F, I>(
    mut trace: F,
    entries: &[usize],
    ways: &[usize],
    mode: CcMode,
) -> Vec<(usize, usize, f64)>
where
    F: FnMut() -> I,
    I: IntoIterator<Item = TraceEntry>,
{
    let mut out = Vec::new();
    for &e in entries {
        for &w in ways {
            if w > e {
                continue;
            }
            let geom = if w == 0 {
                IfGeometry::fully_associative(e)
            } else {
                IfGeometry::set_associative(e, w)
            };
            out.push((e, w, if_reduction(trace(), geom, mode)));
        }
    }
    out
}

/// M-TLB miss rate for a trace under a given level-1 width and capacity,
/// translating every memory access of the trace (1-1 metadata assumption of
/// Figure 14).
pub fn mtlb_miss_rate(
    trace: impl IntoIterator<Item = TraceEntry>,
    level1_bits: u8,
    entries: usize,
) -> f64 {
    let layout =
        ShadowLayout::for_coverage(level1_bits, 4, ElemSize::B4).expect("sweep layouts are valid");
    let mut tlb = MetadataTlb::new(entries);
    tlb.lma_config(layout);
    let mut shadow = TwoLevelShadow::new(layout, 0);
    for entry in trace {
        for m in [entry.mem_read(), entry.mem_write()].into_iter().flatten() {
            let _ = tlb.lma_or_fill(m.addr, || shadow.chunk_base_va(m.addr));
        }
    }
    tlb.stats().miss_rate()
}

/// The touched-page footprint of a trace (for the flexible level-1
/// sizing).
pub fn trace_footprint(trace: impl IntoIterator<Item = TraceEntry>) -> BTreeSet<u32> {
    footprint_pages(
        trace.into_iter().flat_map(|e| [e.mem_read(), e.mem_write()]).flatten().map(|m| m.addr),
    )
}

/// The flexible design point of Figure 14(b): the chosen level-1 width for
/// a trace footprint under the paper's policy, and the resulting miss rate
/// at `entries`.
pub fn mtlb_flexible(
    footprint: &BTreeSet<u32>,
    trace: impl IntoIterator<Item = TraceEntry>,
    entries: usize,
) -> (u8, f64) {
    let bits = choose_level1_bits(footprint, 8..=20, SizingPolicy::default());
    (bits, mtlb_miss_rate(trace, bits, entries))
}

/// Lifeguard dynamic-instruction reduction from the `LMA` instruction
/// (Figure 12, first column): total handler instructions with the software
/// two-level walk versus with the M-TLB, everything else identical
/// (baseline dispatch, no IT/IF).
pub fn lma_instr_reduction(
    kind: LifeguardKind,
    mut trace: impl FnMut() -> Box<dyn Iterator<Item = TraceEntry>>,
    premark: &[(u32, u32)],
) -> f64 {
    let run = |accel: AccelConfig, trace: Box<dyn Iterator<Item = TraceEntry>>| -> u64 {
        let mut lg = kind.build(&accel);
        lg.set_synthetic_workload_mode(true);
        for (b, l) in premark {
            lg.premark_region(*b, *l);
        }
        let masked = kind.mask_config(&accel);
        let mut pipeline = DispatchPipeline::new(lg.etct(), &masked);
        let mut cost = CostSink::new();
        let mut total = 0u64;
        for entry in trace {
            pipeline.dispatch(&entry, |dev: DeliveredEvent| {
                cost.clear();
                lg.handle(&dev, &mut cost);
                total += cost.instrs();
            });
        }
        total
    };
    let base = run(AccelConfig::baseline(), trace());
    let lma = run(AccelConfig::lma(), trace());
    if base == 0 {
        0.0
    } else {
        1.0 - lma as f64 / base as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_workload::{Benchmark, MtBenchmark};

    const N: u64 = 60_000;

    #[test]
    fn it_reduction_lands_in_paper_band() {
        // Figure 13(a): 35.8%-82.0% across SPEC.
        for b in [Benchmark::Crafty, Benchmark::Gzip, Benchmark::Gcc] {
            let r = it_reduction(b.trace(N), ItConfig::taint_style());
            assert!((0.25..=0.95).contains(&r), "{b}: IT reduction {r:.2} outside plausible band");
        }
    }

    #[test]
    fn memcheck_style_filters_less_than_taint_style() {
        // Eager checks add deliveries, so MemCheck's reduction is lower
        // (Figure 12: 24.9-59.7% vs 37.4-74.4%).
        let b = Benchmark::Gcc;
        let taint = it_reduction(b.trace(N), ItConfig::taint_style());
        let mem = it_reduction(b.trace(N), ItConfig::memcheck_style());
        assert!(mem <= taint, "memcheck {mem:.2} vs taint {taint:.2}");
    }

    #[test]
    fn if_reduction_grows_with_entries() {
        let b = Benchmark::Crafty;
        let small = if_reduction(b.trace(N), IfGeometry::fully_associative(8), CcMode::Combined);
        let large = if_reduction(b.trace(N), IfGeometry::fully_associative(256), CcMode::Combined);
        assert!(large >= small, "8 entries {small:.2} vs 256 {large:.2}");
        assert!(large > 0.2, "large filter should catch reuse, got {large:.2}");
    }

    #[test]
    fn four_way_close_to_fully_associative() {
        // Paper: "a set-associative design with 4 or more ways works as
        // well as the fully-associative design".
        let b = Benchmark::Vortex;
        let fa = if_reduction(b.trace(N), IfGeometry::fully_associative(32), CcMode::Combined);
        let w4 = if_reduction(b.trace(N), IfGeometry::set_associative(32, 4), CcMode::Combined);
        assert!((fa - w4).abs() < 0.10, "fully-assoc {fa:.2} vs 4-way {w4:.2}");
    }

    #[test]
    fn separate_ccs_filter_no_more_than_combined() {
        let g = || MtBenchmark::WaterNq.trace(N);
        let combined = if_reduction(g(), IfGeometry::fully_associative(32), CcMode::Combined);
        let separate = if_reduction(g(), IfGeometry::fully_associative(32), CcMode::Separate);
        assert!(separate <= combined + 0.02);
    }

    #[test]
    fn mtlb_miss_rate_drops_with_fewer_level1_bits_and_more_entries() {
        let g = || Benchmark::Mcf.trace(N);
        let coarse16 = mtlb_miss_rate(g(), 20, 16);
        let coarse256 = mtlb_miss_rate(g(), 20, 256);
        let fine16 = mtlb_miss_rate(g(), 12, 16);
        assert!(coarse256 <= coarse16);
        assert!(fine16 <= coarse16);
        assert!(coarse16 > 0.01, "mcf at 20 bits/16 entries must thrash, got {coarse16:.4}");
    }

    #[test]
    fn flexible_sizing_nearly_eliminates_misses() {
        let b = Benchmark::Vpr;
        let fixed = mtlb_miss_rate(b.trace(N), 20, 64);
        let fp = trace_footprint(b.trace(N));
        let (bits, flexible) = mtlb_flexible(&fp, b.trace(N), 64);
        assert!(bits < 20);
        assert!(flexible <= fixed);
        assert!(flexible < 0.01, "flexible design should be negligible, got {flexible:.4}");
    }

    #[test]
    fn lma_reduction_in_paper_band() {
        // Figure 12: 16.7%-49.3% across lifeguards/benchmarks.
        let b = Benchmark::Gzip;
        let premark = b.profile().premark_regions();
        let r = lma_instr_reduction(LifeguardKind::AddrCheck, || Box::new(b.trace(N)), &premark);
        assert!((0.15..=0.60).contains(&r), "AddrCheck LMA reduction {r:.2}");
    }
}
