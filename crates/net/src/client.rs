//! The client side: [`TraceForwarder`] ships a live record stream or a
//! recorded trace file to a remote [`IngestServer`](crate::IngestServer),
//! honoring the server's byte credits.

use crate::wire::{
    self, Fill, FinStats, MsgBuf, NetError, MSG_HEADER_BYTES, NET_VERSION, NET_VERSION_COMPAT,
    SPAN_PREFIX_BYTES,
};
use igm_isa::TraceEntry;
use igm_lba::{chunks, TraceBatch};
use igm_obs::{Histogram, MetricsRegistry};
use igm_runtime::SessionConfig;
use igm_span::{alloc_flow, FlightRecorder, FrameTag, Sampler, Stage, Track};
use igm_trace::{encode_frame_with, Codec, CodecMetrics, Predictors, TraceReader};
use std::fs::File;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side transport parameters.
#[derive(Debug, Clone)]
pub struct ForwarderConfig {
    /// Records are chunked at this many compressed-model bytes per frame
    /// (one wire chunk per frame). Matches the pool's default transport
    /// chunk so a forwarded stream reproduces a local session's batch
    /// boundaries — which is what makes the loopback-equivalence guarantee
    /// exact.
    pub chunk_bytes: u32,
    /// How long to wait for the server's handshake reply (and for the
    /// final `FIN_ACK`).
    pub handshake_timeout: Duration,
    /// The trace codec every chunk frame on this lane will carry,
    /// negotiated in the `HELLO`. Defaults to the value-predicted codec;
    /// [`Codec::Delta`] trades ~4–5× more wire bytes for a simpler
    /// payload.
    pub codec: Codec,
}

impl Default for ForwarderConfig {
    fn default() -> ForwarderConfig {
        ForwarderConfig {
            // Inherit the pool's transport default so the two can never
            // silently diverge (the batch-boundary equivalence guarantee
            // depends on them matching).
            chunk_bytes: igm_runtime::PoolConfig::default().chunk_bytes,
            handshake_timeout: Duration::from_secs(10),
            codec: Codec::Predicted,
        }
    }
}

/// Counters a forwarder accumulates (the client-side analogue of the
/// ingest lane's [`LaneStats`](igm_trace::LaneStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwarderStats {
    /// Chunk messages sent.
    pub chunks: u64,
    /// Records encoded into them.
    pub records: u64,
    /// Credit-accounted frame bytes sent.
    pub frame_bytes: u64,
    /// Sends that found the credit allowance exhausted and had to wait for
    /// a grant — the remote analogue of the SPSC channel's producer
    /// stalls: each one means the server-side log channel (and behind it,
    /// a lifeguard) was the bottleneck.
    pub credit_stalls: u64,
    /// Wall-clock nanoseconds spent waiting for credit.
    pub credit_stall_nanos: u64,
}

/// What a finished forwarding session produced.
#[derive(Debug, Clone, Copy)]
pub struct ForwarderReport {
    /// Client-side counters.
    pub stats: ForwarderStats,
    /// Records the server acknowledged ingesting (`FIN_ACK`). Equal to
    /// `stats.records` on a healthy lane.
    pub server_records: u64,
}

/// A connection streaming one tenant's records to a remote ingest server.
///
/// The forwarder encodes every batch as a standard `igm-trace` codec
/// frame (the same bytes a [`CaptureSession`](igm_trace::CaptureSession)
/// would write) and ships it inside a chunk message, spending the byte
/// credits the server grants; when the allowance runs out the send
/// *stalls* — counted in [`ForwarderStats::credit_stalls`] — until the
/// pool drains and a grant arrives. Sources can be live record iterators
/// ([`TraceForwarder::stream`]), pre-batched chunks
/// ([`TraceForwarder::send_batch`]) or recorded trace files
/// ([`TraceForwarder::forward_file`]).
pub struct TraceForwarder {
    stream: TcpStream,
    inbuf: MsgBuf,
    /// Remaining credit in frame bytes. Signed: the protocol lets one
    /// in-flight frame overdraw the allowance so frames larger than the
    /// window still make progress.
    credit: i64,
    chunk_bytes: u32,
    handshake_timeout: Duration,
    frame: Vec<u8>,
    stats: ForwarderStats,
    /// Set once the server's `FIN_ACK` arrives.
    fin_ack: Option<u64>,
    /// `igm_net_credit_stall_nanos` when a registry is attached
    /// ([`TraceForwarder::attach_metrics`]); disabled otherwise — the
    /// stall duration is already measured for [`ForwarderStats`], so the
    /// histogram adds no clock reads of its own.
    stall_hist: Histogram,
    /// The negotiated per-chunk trace codec ([`ForwarderConfig::codec`]).
    codec: Codec,
    /// Encoder predictor tables, persistent across frames (each frame
    /// still resets them — holding the allocation is what matters).
    predictors: Box<Predictors>,
    /// Codec byte counters / encode-latency histogram, bound by
    /// [`TraceForwarder::attach_metrics`].
    codec_metrics: CodecMetrics,
    /// The protocol version this connection actually speaks:
    /// [`NET_VERSION`] normally, [`NET_VERSION_COMPAT`] after a
    /// downgrade retry against an old server. Chunks carry the span
    /// prefix only at ≥ [`NET_VERSION`].
    wire_version: u32,
    /// Span origin state, bound by [`TraceForwarder::attach_spans`].
    spans: Option<ClientSpans>,
}

/// The forwarder's span-origin state: this lane's flow, its claimed
/// recorder ring, and the sampler that decides — once per chunk, at the
/// origin — whether a frame's journey is recorded.
struct ClientSpans {
    rec: Arc<FlightRecorder>,
    ring: usize,
    flow: u32,
    sampler: Sampler,
    /// Frame sequence number within the flow: one per chunk, sampled or
    /// not, so a waterfall's seq gaps reveal the sampling rate.
    next_seq: u64,
}

impl ClientSpans {
    fn tag_chunk(&mut self) -> Option<FrameTag> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sampler.sample().then_some(FrameTag { flow: self.flow, seq })
    }
}

impl TraceForwarder {
    /// Connects and performs the handshake under default transport
    /// parameters: `session` describes the tenant exactly as a local
    /// [`MonitorPool::open_session`](igm_runtime::MonitorPool::open_session)
    /// call would.
    pub fn connect(
        addr: impl ToSocketAddrs,
        session: &SessionConfig,
    ) -> Result<TraceForwarder, NetError> {
        TraceForwarder::connect_with(addr, session, ForwarderConfig::default())
    }

    /// Connects with explicit transport parameters. Speaks
    /// [`NET_VERSION`]; when an old server refuses the handshake naming
    /// the protocol version, retries once speaking
    /// [`NET_VERSION_COMPAT`] — the lane then works exactly as before
    /// version 3, just without span provenance on the wire.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        session: &SessionConfig,
        cfg: ForwarderConfig,
    ) -> Result<TraceForwarder, NetError> {
        match TraceForwarder::connect_version(&addr, session, &cfg, NET_VERSION) {
            Err(NetError::Rejected(reason)) if reason.contains("protocol version") => {
                TraceForwarder::connect_version(&addr, session, &cfg, NET_VERSION_COMPAT)
            }
            r => r,
        }
    }

    fn connect_version(
        addr: impl ToSocketAddrs,
        session: &SessionConfig,
        cfg: &ForwarderConfig,
        version: u32,
    ) -> Result<TraceForwarder, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let mut fwd = TraceForwarder {
            stream,
            inbuf: MsgBuf::new(),
            credit: 0,
            chunk_bytes: cfg.chunk_bytes,
            handshake_timeout: cfg.handshake_timeout,
            frame: Vec::new(),
            stats: ForwarderStats::default(),
            fin_ack: None,
            stall_hist: Histogram::disabled(),
            codec: cfg.codec,
            predictors: Box::new(Predictors::new()),
            codec_metrics: CodecMetrics::detached(),
            wire_version: version,
            spans: None,
        };
        let hello = wire::hello_message(version, cfg.codec.wire(), session);
        fwd.push_bytes(&hello)?;
        // The WELCOME carries the initial allowance; harvest() records it
        // as a plain credit grant.
        let deadline = Instant::now() + fwd.handshake_timeout;
        while fwd.credit == 0 {
            if !fwd.harvest()? && Instant::now() >= deadline {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for the server handshake",
                )));
            }
            if fwd.credit == 0 {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        Ok(fwd)
    }

    /// Publishes this forwarder's credit-stall durations to `registry` as
    /// the `igm_net_credit_stall_nanos` histogram (e.g. the co-located
    /// pool's registry in a loopback deployment, or a client-side registry
    /// served by its own [`StatsServer`](igm_obs::StatsServer)), together
    /// with the `igm_codec_*` byte counters and encode-latency histogram.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.stall_hist = registry.histogram(
            "igm_net_credit_stall_nanos",
            "Wall-clock wait for a server credit grant, per stall",
        );
        self.codec_metrics = CodecMetrics::register(registry);
    }

    /// Makes this forwarder a span origin on `recorder` (e.g. the pool's
    /// own recorder in a loopback deployment, or a client-side recorder
    /// served by the client's [`StatsServer`](igm_obs::StatsServer)):
    /// every chunk gets a frame sequence number under a freshly allocated
    /// flow, the recorder's sampler decides once per chunk whether the
    /// frame's journey is recorded, and sampled chunks stamp
    /// `client_send` / `credit_stall` stages on [`Track::Client`] while
    /// carrying their tag across the wire for the server-side stages to
    /// chain under. A no-op on a connection downgraded to
    /// [`NET_VERSION_COMPAT`] — that wire format has nowhere to carry the
    /// tag, and a chain that can never join its server half would only
    /// mislead.
    pub fn attach_spans(&mut self, recorder: &Arc<FlightRecorder>) {
        if self.wire_version < NET_VERSION {
            return;
        }
        self.spans = Some(ClientSpans {
            rec: Arc::clone(recorder),
            ring: recorder.ring_handle(),
            flow: alloc_flow(),
            sampler: recorder.sampler(),
            next_seq: 0,
        });
    }

    /// The protocol version this connection speaks ([`NET_VERSION`], or
    /// [`NET_VERSION_COMPAT`] after a downgrade retry).
    pub fn wire_version(&self) -> u32 {
        self.wire_version
    }

    /// Client-side counters so far.
    pub fn stats(&self) -> ForwarderStats {
        self.stats
    }

    /// The chunking granularity ([`ForwarderConfig::chunk_bytes`]).
    pub fn chunk_bytes(&self) -> u32 {
        self.chunk_bytes
    }

    /// Sends one pre-batched chunk as one frame, waiting for credit if the
    /// allowance is spent. An empty batch sends nothing.
    pub fn send_batch(&mut self, batch: &TraceBatch) -> Result<(), NetError> {
        if batch.is_empty() {
            return Ok(());
        }
        let tag = self.spans.as_mut().and_then(ClientSpans::tag_chunk);
        // `client_send` opens before the encode and closes when the last
        // byte hits the socket, so a credit stall nests inside it — the
        // waterfall shows where the send window went.
        let send_start = match (&self.spans, tag) {
            (Some(s), Some(_)) => Some(s.rec.now()),
            _ => None,
        };
        self.frame.clear();
        let started = self.codec_metrics.start_encode();
        encode_frame_with(&mut self.predictors, self.codec, &mut self.frame, batch);
        self.codec_metrics.stop_encode(started);
        self.codec_metrics.count_frame(batch.len() as u64, self.frame.len() as u64);
        self.wait_for_credit(tag)?;
        // Credit accounts the whole chunk payload — span prefix included
        // on a v3 lane — matching the server's received-bytes ledger.
        let prefix = if self.wire_version >= NET_VERSION { SPAN_PREFIX_BYTES } else { 0 };
        let payload_len = self.frame.len() + prefix;
        let mut header = Vec::with_capacity(MSG_HEADER_BYTES + SPAN_PREFIX_BYTES);
        wire::push_header(&mut header, wire::msg::CHUNK, payload_len);
        if prefix > 0 {
            wire::push_span_prefix(&mut header, tag);
        }
        self.push_bytes(&header)?;
        let frame = std::mem::take(&mut self.frame);
        let r = self.push_bytes(&frame);
        self.frame = frame;
        r?;
        if let (Some(s), Some(tag), Some(t0)) = (&self.spans, tag, send_start) {
            s.rec.record(s.ring, Stage::ClientSend, Track::Client(s.flow), tag, t0, s.rec.now());
        }
        self.credit -= payload_len as i64;
        self.stats.chunks += 1;
        self.stats.records += batch.len() as u64;
        self.stats.frame_bytes += payload_len as u64;
        Ok(())
    }

    /// Streams a whole record iterator, chunked at
    /// [`TraceForwarder::chunk_bytes`] — the remote twin of
    /// [`SessionHandle::stream`](igm_runtime::SessionHandle::stream).
    pub fn stream(&mut self, trace: impl IntoIterator<Item = TraceEntry>) -> Result<(), NetError> {
        let mut chunker = chunks(trace, self.chunk_bytes);
        let mut batch = TraceBatch::new();
        while chunker.next_into_batch(&mut batch) {
            self.send_batch(&batch)?;
        }
        Ok(())
    }

    /// Forwards a recorded trace stream chunk-for-chunk (each recorded
    /// frame becomes one wire chunk, so the server reproduces the capture's
    /// batch structure). Returns the records forwarded.
    pub fn forward_reader<R: Read>(
        &mut self,
        reader: &mut TraceReader<R>,
    ) -> Result<u64, NetError> {
        let mut batch = TraceBatch::new();
        let mut records = 0u64;
        while reader.read_chunk_into_batch(&mut batch)? {
            records += batch.len() as u64;
            self.send_batch(&batch)?;
        }
        Ok(records)
    }

    /// Forwards the recorded trace file at `path`.
    pub fn forward_file(&mut self, path: impl AsRef<Path>) -> Result<u64, NetError> {
        let file = File::open(path)?;
        let mut reader = TraceReader::new(BufReader::new(file))?;
        self.forward_reader(&mut reader)
    }

    /// Clean shutdown: sends `FIN` with the final lane stats, waits for
    /// the server's `FIN_ACK`, and reports both sides' counts.
    pub fn finish(mut self) -> Result<ForwarderReport, NetError> {
        let fin = wire::fin_message(&FinStats {
            chunks: self.stats.chunks,
            records: self.stats.records,
            frame_bytes: self.stats.frame_bytes,
            credit_stalls: self.stats.credit_stalls,
        });
        self.push_bytes(&fin)?;
        let deadline = Instant::now() + self.handshake_timeout;
        loop {
            if let Some(records) = self.fin_ack {
                return Ok(ForwarderReport { stats: self.stats, server_records: records });
            }
            match self.harvest() {
                Ok(true) => {}
                Ok(false) => {
                    if Instant::now() >= deadline {
                        return Err(NetError::Io(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out waiting for FIN_ACK",
                        )));
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                // The server may close the socket right after flushing the
                // FIN_ACK; if the ack landed in the same harvest that saw
                // the EOF, the shutdown was clean — only fail when the
                // connection died *without* acknowledging.
                Err(e) => {
                    if let Some(records) = self.fin_ack {
                        return Ok(ForwarderReport { stats: self.stats, server_records: records });
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Blocks (polling) until the credit allowance is positive. A stall
    /// on a sampled frame leaves a `credit_stall` stage under `tag`.
    fn wait_for_credit(&mut self, tag: Option<FrameTag>) -> Result<(), NetError> {
        self.harvest()?;
        if self.credit > 0 {
            return Ok(());
        }
        self.stats.credit_stalls += 1;
        let start = Instant::now();
        while self.credit <= 0 {
            if !self.harvest()? {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        let stalled = start.elapsed().as_nanos() as u64;
        self.stats.credit_stall_nanos += stalled;
        self.stall_hist.record(stalled);
        if let (Some(s), Some(tag)) = (&self.spans, tag) {
            let track = Track::Client(s.flow);
            s.rec.record(s.ring, Stage::CreditStall, track, tag, s.rec.stamp(start), s.rec.now());
        }
        Ok(())
    }

    /// Drains whatever server messages are available without blocking.
    /// Returns whether anything was processed.
    fn harvest(&mut self) -> Result<bool, NetError> {
        let mut processed = false;
        loop {
            while let Some((ty, range)) = self.inbuf.peek_message()? {
                let payload_end = range.end;
                match ty {
                    wire::msg::WELCOME => {
                        let grant = wire::decode_welcome(self.inbuf.bytes(range))?;
                        self.credit += grant as i64;
                    }
                    wire::msg::CREDIT => {
                        let grant = wire::decode_credit(self.inbuf.bytes(range))?;
                        self.credit += grant as i64;
                    }
                    wire::msg::FIN_ACK => {
                        self.fin_ack = Some(wire::decode_fin_ack(self.inbuf.bytes(range))?);
                    }
                    wire::msg::ERROR => {
                        let reason = wire::decode_error(self.inbuf.bytes(range))?;
                        return Err(NetError::Rejected(reason));
                    }
                    _ => return Err(NetError::Malformed("unexpected message type from server")),
                }
                self.inbuf.consume(payload_end);
                processed = true;
            }
            match self.inbuf.fill_from(&mut self.stream, 16 * 1024)? {
                Fill::Bytes(_) => continue,
                Fill::WouldBlock => return Ok(processed),
                Fill::Eof => {
                    return Err(NetError::Disconnected(if self.inbuf.has_buffered() {
                        "server closed mid-message"
                    } else {
                        "server closed the connection"
                    }))
                }
            }
        }
    }

    /// Writes all of `bytes` on the nonblocking socket, harvesting server
    /// messages while the send buffer is full (so a credit grant can never
    /// deadlock against a large in-flight chunk).
    fn push_bytes(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        let mut sent = 0usize;
        while sent < bytes.len() {
            match self.stream.write(&bytes[sent..]) {
                Ok(0) => return Err(NetError::Disconnected("socket closed while sending")),
                Ok(n) => sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.harvest()?;
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
        Ok(())
    }
}
