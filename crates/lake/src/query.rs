//! The lake's query model and bitmap planner.
//!
//! A [`LakeQuery`] is a conjunction over the four posting dimensions:
//! within one dimension, included keys are OR'd, excluded keys are
//! subtracted; across dimensions the results are AND'd; an optional
//! record-sequence range clamps the whole thing. Evaluation walks the
//! sidecar's frame directory and does set algebra on
//! [`FrameSet`] scratch bitmaps — the trace payload is never touched.
//!
//! The planner's frame-skip rule is what makes low-selectivity queries
//! cheap: a frame whose posting section holds *none* of a dimension's
//! included keys cannot contain a match, so it is skipped from the
//! directory alone (no bitmap work, no decode). At ≤1% selectivity most
//! frames fail this test for at least one dimension.

use igm_span::RecordId;
use igm_trace::{op_class, site, Dim, FrameSet, TraceIndex, PAGE_SHIFT, PC_BUCKET_SHIFT};
use std::ops::Range;

/// One dimension's terms: `include` keys are OR'd together (empty means
/// "every record"), `exclude` keys are subtracted afterwards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DimTerms {
    /// Keys at least one of which must match (empty = unconstrained).
    pub include: Vec<u32>,
    /// Keys none of which may match.
    pub exclude: Vec<u32>,
}

/// A conjunctive lake query over posting dimensions.
#[derive(Debug, Clone, Default)]
pub struct LakeQuery {
    dims: Vec<(Dim, DimTerms)>,
    /// Optional record-sequence window (0-based, trace-wide).
    pub seq: Option<Range<u64>>,
}

impl LakeQuery {
    /// The empty query (matches every record).
    pub fn new() -> LakeQuery {
        LakeQuery::default()
    }

    fn terms_mut(&mut self, dim: Dim) -> &mut DimTerms {
        if let Some(i) = self.dims.iter().position(|(d, _)| *d == dim) {
            return &mut self.dims[i].1;
        }
        self.dims.push((dim, DimTerms::default()));
        &mut self.dims.last_mut().unwrap().1
    }

    /// Adds an included key for `dim` (keys of one dimension OR).
    pub fn include(mut self, dim: Dim, key: u32) -> LakeQuery {
        self.terms_mut(dim).include.push(key);
        self
    }

    /// Adds an excluded key for `dim`.
    pub fn exclude(mut self, dim: Dim, key: u32) -> LakeQuery {
        self.terms_mut(dim).exclude.push(key);
        self
    }

    /// Constrains to the pc bucket containing `pc`.
    pub fn pc(self, pc: u32) -> LakeQuery {
        self.include(Dim::PcBucket, pc >> PC_BUCKET_SHIFT)
    }

    /// Constrains to the 4 KiB page containing `addr`.
    pub fn page(self, addr: u32) -> LakeQuery {
        self.include(Dim::AddrPage, addr >> PAGE_SHIFT)
    }

    /// Constrains to a record-sequence window.
    pub fn seq_range(mut self, range: Range<u64>) -> LakeQuery {
        self.seq = Some(range);
        self
    }

    /// The dimensions with terms, in insertion order.
    pub fn dims(&self) -> &[(Dim, DimTerms)] {
        &self.dims
    }

    /// Whether no constraint was given at all.
    pub fn is_empty(&self) -> bool {
        self.dims.iter().all(|(_, t)| t.include.is_empty() && t.exclude.is_empty())
            && self.seq.is_none()
    }

    /// Parses one HTTP query parameter's worth of terms for `dim`:
    /// comma-separated keys, each optionally `!`-prefixed for NOT.
    /// Key syntax per dimension: `pc` and `page` take raw program
    /// counters / addresses (decimal or `0x` hex) and are bucketed
    /// internally; `op` and `site` take their lowercase class labels.
    pub fn parse_dim(mut self, dim: Dim, raw: &str) -> Result<LakeQuery, String> {
        for term in raw.split(',') {
            let term = term.trim();
            if term.is_empty() {
                return Err(format!("empty term in {}={raw:?}", dim.name()));
            }
            let (negate, term) = match term.strip_prefix('!') {
                Some(rest) => (true, rest),
                None => (false, term),
            };
            let key = match dim {
                Dim::PcBucket => parse_num(term)
                    .map(|pc| pc >> PC_BUCKET_SHIFT)
                    .ok_or_else(|| format!("pc term {term:?} is not a number"))?,
                Dim::AddrPage => parse_num(term)
                    .map(|a| a >> PAGE_SHIFT)
                    .ok_or_else(|| format!("page term {term:?} is not an address"))?,
                Dim::OpClass => op_class::parse(term).ok_or_else(|| {
                    format!("op term {term:?} is not one of load/store/update/compute/ctrl/annot")
                })?,
                Dim::Site => site::parse(term)
                    .ok_or_else(|| format!("site term {term:?} is not a known site kind"))?,
            };
            let t = self.terms_mut(dim);
            let list = if negate { &mut t.exclude } else { &mut t.include };
            if !list.contains(&key) {
                list.push(key);
            }
        }
        Ok(self)
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal u32.
pub fn parse_num(s: &str) -> Option<u32> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u32::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// What one query evaluation found.
#[derive(Debug, Clone, Default)]
pub struct LakeHits {
    /// Total matching records (all of them, counted even past `limit`).
    pub matched: u64,
    /// The first `limit` matching record ids, in `(trace, seq)` order.
    pub hits: Vec<RecordId>,
    /// Whether `hits` was capped below `matched`.
    pub truncated: bool,
    /// Traces the query ran over.
    pub traces: usize,
    /// Frames whose bitmaps were actually evaluated.
    pub frames_visited: usize,
    /// Frames dismissed from the posting directory alone (an included
    /// key was absent, or the seq window missed the frame).
    pub frames_skipped: usize,
}

/// Evaluates `q` over one trace's posting index. Pure sidecar algebra:
/// the trace file itself is neither opened nor decoded. Results are
/// appended to `out` (so the catalog can aggregate across traces).
pub fn execute(
    index: &TraceIndex,
    tenant: u32,
    trace: u32,
    q: &LakeQuery,
    limit: usize,
    out: &mut LakeHits,
) {
    debug_assert!(index.has_postings(), "lake traces always carry posting indexes");
    out.traces += 1;
    let mut acc = FrameSet::default();
    let mut scratch = FrameSet::default();
    let mut neg = FrameSet::default();
    'frames: for (i, e) in index.entries().iter().enumerate() {
        let frame_end = e.first_record + e.records as u64;
        if let Some(r) = &q.seq {
            if frame_end <= r.start || e.first_record >= r.end {
                out.frames_skipped += 1;
                continue;
            }
        }
        let fp = &index.frame_postings()[i];
        // Planner skip: a dimension with included keys none of which
        // appear in this frame's posting section cannot match.
        for (dim, t) in &q.dims {
            if !t.include.is_empty() && t.include.iter().all(|&k| fp.get(*dim, k).is_none()) {
                out.frames_skipped += 1;
                continue 'frames;
            }
        }
        out.frames_visited += 1;
        acc.reset(e.records);
        acc.fill();
        for (dim, t) in &q.dims {
            scratch.reset(e.records);
            if t.include.is_empty() {
                scratch.fill();
            } else {
                for &k in &t.include {
                    if let Some(p) = fp.get(*dim, k) {
                        scratch.or_posting(p);
                    }
                }
            }
            if !t.exclude.is_empty() {
                neg.reset(e.records);
                for &k in &t.exclude {
                    if let Some(p) = fp.get(*dim, k) {
                        neg.or_posting(p);
                    }
                }
                neg.not_assign();
                scratch.and_assign(&neg);
            }
            acc.and_assign(&scratch);
            if acc.is_empty() {
                break;
            }
        }
        if let Some(r) = &q.seq {
            let lo = r.start.saturating_sub(e.first_record).min(e.records as u64) as u32;
            let hi = (r.end - e.first_record).min(e.records as u64) as u32;
            acc.clamp_range(lo, hi);
        }
        for v in acc.iter() {
            out.matched += 1;
            if out.hits.len() < limit {
                out.hits.push(RecordId::new(tenant, trace, e.first_record + v as u64));
            } else {
                out.truncated = true;
            }
        }
    }
}

/// The scalar ground truth the bitmap planner is property-tested
/// against: whether one decoded record matches `q`. Used by the
/// full-replay filter baseline (decode everything, test every record) —
/// the lake's answer must equal that filter's, record for record.
pub fn matches_entry(q: &LakeQuery, seq: u64, entry: &igm_isa::TraceEntry) -> bool {
    if let Some(r) = &q.seq {
        if !r.contains(&seq) {
            return false;
        }
    }
    let code = entry.op.field_code();
    for (dim, t) in &q.dims {
        let mut keys: Vec<u32> = Vec::new();
        match dim {
            Dim::PcBucket => keys.push(entry.pc >> PC_BUCKET_SHIFT),
            Dim::OpClass => keys.push(op_class::of(code)),
            Dim::AddrPage => entry.op.for_each_addr(|a| keys.push(a >> PAGE_SHIFT)),
            Dim::Site => keys.extend(site::of(code)),
        }
        let included = t.include.is_empty() || keys.iter().any(|k| t.include.contains(k));
        let excluded = keys.iter().any(|k| t.exclude.contains(k));
        if !included || excluded {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_dim_handles_or_not_and_bucketing() {
        let q = LakeQuery::new()
            .parse_dim(Dim::OpClass, "load,store,!annot")
            .unwrap()
            .parse_dim(Dim::AddrPage, "0x4000,0x4fff")
            .unwrap()
            .parse_dim(Dim::PcBucket, "256")
            .unwrap();
        let dims = q.dims();
        assert_eq!(dims[0].0, Dim::OpClass);
        assert_eq!(dims[0].1.include, vec![op_class::LOAD, op_class::STORE]);
        assert_eq!(dims[0].1.exclude, vec![op_class::ANNOT]);
        // Both addresses fall in page 4 — deduplicated.
        assert_eq!(dims[1].1.include, vec![4]);
        assert_eq!(dims[2].1.include, vec![256 >> PC_BUCKET_SHIFT]);

        assert!(LakeQuery::new().parse_dim(Dim::OpClass, "loads").is_err());
        assert!(LakeQuery::new().parse_dim(Dim::Site, "frees").is_err());
        assert!(LakeQuery::new().parse_dim(Dim::PcBucket, "0xzz").is_err());
        assert!(LakeQuery::new().parse_dim(Dim::AddrPage, "a,,b").is_err());
    }

    #[test]
    fn parse_num_accepts_decimal_and_hex() {
        assert_eq!(parse_num("4096"), Some(4096));
        assert_eq!(parse_num("0x1000"), Some(0x1000));
        assert_eq!(parse_num("0XFF"), Some(255));
        assert_eq!(parse_num("nope"), None);
        assert_eq!(parse_num("0x"), None);
    }
}
