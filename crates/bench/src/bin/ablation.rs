//! Ablation study of the design choices called out in `DESIGN.md`:
//!
//! 1. **IT clean-`%rs` "do nothing" optimization** (paper §4.3) — how many
//!    propagation events it saves.
//! 2. **IT write-after-read conflict detection** — how many extra
//!    materialization events soundness costs (disabling it is unsound; the
//!    ablation quantifies what the hardware pays for correctness).
//! 3. **IF check categorization** — combined vs separate load/store
//!    categories on the same stream (the LockSet-required split's cost).
//! 4. **One-level vs two-level shadow organization** — address-space cost
//!    of the simple design (why the paper adopts two-level + M-TLB).

use igm_bench::run_scale;
use igm_core::{IfGeometry, InheritanceTracker, ItConfig};
use igm_lba::{extract_events, Event};
use igm_profiling::{if_reduction, it_reduction, CcMode};
use igm_shadow::OneLevelShadow;
use igm_workload::Benchmark;

fn it_conflict_events(b: Benchmark, n: u64, conflict_detection: bool) -> (u64, u64) {
    let cfg = ItConfig { conflict_detection, ..ItConfig::taint_style() };
    let mut it = InheritanceTracker::new(cfg);
    let mut raw = Vec::new();
    let mut out = Vec::new();
    for entry in b.trace(n) {
        raw.clear();
        extract_events(&entry, &mut raw);
        for dev in &raw {
            match dev.event {
                Event::Prop(_) => {
                    out.clear();
                    it.process(dev.pc, dev.event, &mut out);
                }
                Event::Annot(_) => {
                    out.clear();
                    it.flush_all(dev.pc, &mut out);
                }
                _ => {}
            }
        }
    }
    (it.stats().prop_delivered + it.stats().flush_events, it.stats().conflict_events)
}

fn main() {
    let n = run_scale();
    println!("=== Ablation 1: IT clean-%rs 'do nothing' optimization (§4.3) ===");
    println!("{:<10} {:>12} {:>12}", "benchmark", "with opt", "without");
    for b in [Benchmark::Crafty, Benchmark::Gcc, Benchmark::Gzip, Benchmark::Vortex] {
        let with = it_reduction(b.trace(n), ItConfig::taint_style());
        let without = it_reduction(
            b.trace(n),
            ItConfig { clean_rs_do_nothing: false, ..ItConfig::taint_style() },
        );
        println!("{:<10} {:>11.1}% {:>11.1}%", b.name(), with * 100.0, without * 100.0);
    }

    println!("\n=== Ablation 2: cost of write-after-read conflict detection ===");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "benchmark", "delivered(on)", "delivered(off)", "conflicts"
    );
    for b in [Benchmark::Gcc, Benchmark::Parser, Benchmark::Gzip] {
        let (on, conflicts) = it_conflict_events(b, n, true);
        let (off, _) = it_conflict_events(b, n, false);
        println!("{:<10} {:>14} {:>14} {:>10}", b.name(), on, off, conflicts);
    }
    println!("(disabling conflict detection is UNSOUND; shown only to price soundness)");

    println!("\n=== Ablation 3: IF check categorization, same stream ===");
    println!("{:<10} {:>12} {:>12}", "benchmark", "combined", "separate");
    for b in [Benchmark::Crafty, Benchmark::Vortex, Benchmark::Parser] {
        let geom = IfGeometry::isca08();
        let c = if_reduction(b.trace(n), geom, CcMode::Combined);
        let s = if_reduction(b.trace(n), geom, CcMode::Separate);
        println!("{:<10} {:>11.1}% {:>11.1}%", b.name(), c * 100.0, s * 100.0);
    }

    println!("\n=== Ablation 4: one-level vs two-level shadow space (§6.1) ===");
    for bits in [1u32, 2, 8] {
        let one = OneLevelShadow::new(bits, 0);
        println!(
            "one-level, {bits} bit(s)/byte: reserves {} MB of lifeguard address space up front",
            one.reserved_bytes() >> 20
        );
    }
    println!("two-level: allocates one chunk per touched region (see fig14 for miss rates)");
}
