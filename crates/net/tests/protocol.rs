//! The wire protocol's unhappy paths, exercised over real loopback
//! sockets: version mismatch, mid-frame disconnect, a corrupt frame
//! contained to its own lane, credit starvation/resume, and the
//! tee-at-ingest artifact for remote lanes.

use igm_lifeguards::LifeguardKind;
use igm_net::wire::{self, msg};
use igm_net::{IngestServer, NetError, NetServerConfig, TraceForwarder};
use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
use igm_trace::{encode_frame, Codec, TraceError};
use igm_workload::Benchmark;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn session_cfg(name: &str, kind: LifeguardKind) -> SessionConfig {
    SessionConfig::new(name, kind).synthetic().premark(&Benchmark::Gzip.profile().premark_regions())
}

/// A raw client that speaks just enough protocol to misbehave.
struct RawClient {
    stream: TcpStream,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        RawClient { stream: TcpStream::connect(addr).unwrap() }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
    }

    fn send_message(&mut self, ty: u8, payload: &[u8]) {
        let mut out = Vec::new();
        out.push(ty);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(payload);
        self.send(&out);
    }
}

#[test]
fn version_mismatch_is_rejected_with_a_typed_error() {
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let client = std::thread::spawn(move || {
        let mut raw = RawClient::connect(addr);
        let hello = wire::hello_message(
            99,
            Codec::Predicted.wire(),
            &session_cfg("old", LifeguardKind::AddrCheck),
        );
        raw.send(&hello);
        // Hold the socket open long enough for the server's ERROR reply
        // to land before the drop races it.
        std::thread::sleep(Duration::from_millis(100));
    });
    let report = server.serve_connections(1);
    client.join().unwrap();

    assert_eq!(report.accepted, 0);
    assert_eq!(report.rejected.len(), 1);
    assert!(
        matches!(report.rejected[0].1, NetError::VersionMismatch { theirs: 99 }),
        "expected a version mismatch, got {:?}",
        report.rejected[0].1
    );
    assert!(report.ingest.sessions.is_empty(), "no session may open for a rejected client");
    pool.shutdown();
}

#[test]
fn unknown_trace_codec_is_rejected_with_a_typed_error() {
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let client = std::thread::spawn(move || {
        // Right protocol version, but a trace codec this side has never
        // heard of: the HELLO must be refused before any lane exists.
        let mut raw = RawClient::connect(addr);
        let hello = wire::hello_message(
            wire::NET_VERSION,
            7,
            &session_cfg("exotic", LifeguardKind::AddrCheck),
        );
        raw.send(&hello);
        std::thread::sleep(Duration::from_millis(100));
    });
    let report = server.serve_connections(1);
    client.join().unwrap();

    assert_eq!(report.accepted, 0);
    assert_eq!(report.rejected.len(), 1);
    assert!(
        matches!(report.rejected[0].1, NetError::UnsupportedCodec { theirs: 7 }),
        "expected an unsupported-codec refusal, got {:?}",
        report.rejected[0].1
    );
    assert!(report.ingest.sessions.is_empty(), "no session may open for a rejected client");
    pool.shutdown();
}

#[test]
fn delta_codec_negotiates_and_delivers() {
    // A client that opts into the legacy delta codec still round-trips:
    // the HELLO negotiates codec 1 and every chunk frame carries it.
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    const N: u64 = 3_000;
    let client = std::thread::spawn(move || {
        let cfg = session_cfg("delta", LifeguardKind::AddrCheck);
        let fwd_cfg = igm_net::ForwarderConfig { codec: Codec::Delta, ..Default::default() };
        let mut fwd = TraceForwarder::connect_with(addr, &cfg, fwd_cfg).unwrap();
        fwd.stream(Benchmark::Gzip.trace(N)).unwrap();
        fwd.finish().unwrap()
    });
    let report = server.serve_connections(1);
    let fwd_report = client.join().unwrap();

    assert_eq!(fwd_report.server_records, N);
    assert!(report.ingest.errors.is_empty(), "{:?}", report.ingest.errors);
    assert_eq!(report.ingest.sessions[0].records, N);
    pool.shutdown();
}

#[test]
fn non_hello_first_message_is_rejected_without_blocking_others() {
    let pool = MonitorPool::new(PoolConfig::with_workers(1));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let client = std::thread::spawn(move || {
        // A connection whose first message is not a HELLO is refused…
        let mut raw = RawClient::connect(addr);
        raw.send_message(msg::CHUNK, b"not a handshake");
        // …while a healthy client on a second socket is unaffected.
        let cfg = session_cfg("ok", LifeguardKind::AddrCheck);
        let mut fwd = TraceForwarder::connect(addr, &cfg).expect("healthy client must connect");
        fwd.stream(Benchmark::Gzip.trace(1_000)).unwrap();
        fwd.finish().unwrap().server_records
    });
    let report = server.serve_connections(2);
    let forwarded = client.join().unwrap();

    assert_eq!(report.accepted, 1);
    assert_eq!(report.rejected.len(), 1);
    assert!(matches!(report.rejected[0].1, NetError::Malformed(_)));
    assert_eq!(forwarded, 1_000);
    pool.shutdown();
}

#[test]
fn connect_surfaces_a_server_side_rejection() {
    // A minimal raw "server" that refuses every handshake with an ERROR
    // message — connect() must surface it as NetError::Rejected.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let reason = "tenant quota exceeded";
        let mut out = vec![msg::ERROR];
        out.extend_from_slice(&((2 + reason.len()) as u32).to_le_bytes());
        out.extend_from_slice(&(reason.len() as u16).to_le_bytes());
        out.extend_from_slice(reason.as_bytes());
        stream.write_all(&out).unwrap();
        std::thread::sleep(Duration::from_millis(100));
    });
    let cfg = session_cfg("refused", LifeguardKind::AddrCheck);
    match TraceForwarder::connect(addr, &cfg) {
        Err(NetError::Rejected(reason)) => assert_eq!(reason, "tenant quota exceeded"),
        other => panic!("expected Rejected, got {:?}", other.map(|_| "a connection")),
    }
    fake.join().unwrap();
}

#[test]
fn old_server_triggers_a_v2_downgrade_retry() {
    use std::io::Read;

    fn read_message(stream: &mut TcpStream) -> (u8, Vec<u8>) {
        let mut header = [0u8; 5];
        stream.read_exact(&mut header).unwrap();
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).unwrap();
        (header[0], payload)
    }

    // A fake pre-v3 server: refuses the first connection naming the
    // protocol version (exactly what an old decode_hello would), then
    // welcomes the retry and inspects what it receives.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut s1, _) = listener.accept().unwrap();
        let (ty, payload) = read_message(&mut s1);
        assert_eq!(ty, msg::HELLO);
        let announced = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        assert_eq!(announced, wire::NET_VERSION, "the first attempt speaks the current version");
        let reason = "peer speaks protocol version 3 (this side speaks 2)";
        let mut out = vec![msg::ERROR];
        out.extend_from_slice(&((2 + reason.len()) as u32).to_le_bytes());
        out.extend_from_slice(&(reason.len() as u16).to_le_bytes());
        out.extend_from_slice(reason.as_bytes());
        s1.write_all(&out).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        drop(s1);

        // The retry: a v2 HELLO this time. Welcome it with credit and
        // check the chunk that follows is a bare codec frame (no span
        // prefix — that wire format has nowhere to carry one).
        let (mut s2, _) = listener.accept().unwrap();
        let (ty, payload) = read_message(&mut s2);
        assert_eq!(ty, msg::HELLO);
        let announced = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        assert_eq!(announced, wire::NET_VERSION_COMPAT, "the retry downgrades to v2");
        let mut welcome = vec![msg::WELCOME];
        welcome.extend_from_slice(&8u32.to_le_bytes());
        welcome.extend_from_slice(&(1u64 << 20).to_le_bytes());
        s2.write_all(&welcome).unwrap();
        let (ty, payload) = read_message(&mut s2);
        assert_eq!(ty, msg::CHUNK);
        assert_eq!(
            igm_trace::frame_codec(&payload),
            Some(Codec::Predicted),
            "a v2 chunk opens directly with the codec frame"
        );
        std::thread::sleep(Duration::from_millis(100));
    });

    let cfg = session_cfg("legacy", LifeguardKind::AddrCheck);
    let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
    assert_eq!(fwd.wire_version(), wire::NET_VERSION_COMPAT);
    // Span attachment on a downgraded lane is a no-op: nothing to carry
    // the tag, so nothing may be recorded.
    let recorder = std::sync::Arc::new(igm_span::FlightRecorder::new(Default::default()));
    fwd.attach_spans(&recorder);
    let batch: igm_lba::TraceBatch = Benchmark::Gzip.trace(64).collect();
    fwd.send_batch(&batch).unwrap();
    assert!(recorder.snapshot().is_empty(), "no client stages on a v2 lane");
    fake.join().unwrap();
}

#[test]
fn mid_frame_disconnect_fails_only_that_lane() {
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let bad = std::thread::spawn(move || {
        let mut raw = RawClient::connect(addr);
        raw.send(&wire::hello_message(
            wire::NET_VERSION,
            Codec::Predicted.wire(),
            &session_cfg("truncated", LifeguardKind::AddrCheck),
        ));
        // A chunk message header promising 1000 payload bytes, then only
        // 10 of them, then a hard disconnect mid-frame.
        let mut partial = Vec::new();
        partial.push(msg::CHUNK);
        partial.extend_from_slice(&1000u32.to_le_bytes());
        partial.extend_from_slice(&[0u8; 10]);
        raw.send(&partial);
        // Drop closes the socket with the message incomplete.
    });
    let good = std::thread::spawn(move || {
        let cfg = session_cfg("healthy", LifeguardKind::TaintCheck);
        let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
        fwd.stream(Benchmark::Mcf.trace(5_000)).unwrap();
        fwd.finish().unwrap()
    });
    let report = server.serve_connections(2);
    bad.join().unwrap();
    let good_report = good.join().unwrap();

    assert_eq!(report.accepted, 2);
    assert_eq!(report.ingest.errors.len(), 1, "exactly the truncated lane fails");
    assert_eq!(report.ingest.errors[0].0, "truncated");
    assert!(
        matches!(
            report.ingest.errors[0].1,
            TraceError::Corrupt { reason: "connection closed inside a message", .. }
        ),
        "got {:?}",
        report.ingest.errors[0].1
    );
    let healthy =
        report.ingest.sessions.iter().find(|s| s.name == "healthy").expect("healthy session");
    assert_eq!(healthy.records, 5_000);
    assert_eq!(good_report.server_records, 5_000);
    pool.shutdown();
}

#[test]
fn corrupt_frame_fails_only_its_lane() {
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let server = IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();

    let bad = std::thread::spawn(move || {
        let mut raw = RawClient::connect(addr);
        raw.send(&wire::hello_message(
            wire::NET_VERSION,
            Codec::Predicted.wire(),
            &session_cfg("corrupt", LifeguardKind::AddrCheck),
        ));
        // A structurally complete v3 chunk (unsampled span prefix) whose
        // frame payload is damaged: encode a real frame, then flip a
        // payload byte so the checksum fails.
        let mut payload = vec![0u8; wire::SPAN_PREFIX_BYTES];
        let batch: igm_lba::TraceBatch = Benchmark::Gzip.trace(100).collect();
        let mut frame = Vec::new();
        encode_frame(&mut frame, &batch);
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        payload.extend_from_slice(&frame);
        raw.send_message(msg::CHUNK, &payload);
        std::thread::sleep(Duration::from_millis(100));
    });
    let good = std::thread::spawn(move || {
        let cfg = session_cfg("healthy", LifeguardKind::AddrCheck);
        let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
        fwd.stream(Benchmark::Gzip.trace(4_000)).unwrap();
        fwd.finish().unwrap()
    });
    let report = server.serve_connections(2);
    bad.join().unwrap();
    good.join().unwrap();

    assert_eq!(report.ingest.errors.len(), 1);
    assert_eq!(report.ingest.errors[0].0, "corrupt");
    assert!(
        matches!(
            report.ingest.errors[0].1,
            TraceError::Corrupt { reason: "frame checksum mismatch", .. }
        ),
        "got {:?}",
        report.ingest.errors[0].1
    );
    let healthy =
        report.ingest.sessions.iter().find(|s| s.name == "healthy").expect("healthy session");
    assert_eq!(healthy.records, 4_000);
    pool.shutdown();
}

#[test]
fn credit_starvation_throttles_and_resumes() {
    // A tiny channel (512 model bytes) and a tiny credit window (4 KB)
    // against 30k records: the forwarder must stall on credit many times
    // and still deliver everything once the pool drains.
    let pool =
        MonitorPool::new(PoolConfig { channel_capacity_bytes: 512, ..PoolConfig::with_workers(1) });
    let cfg = NetServerConfig { credit_window: 4 * 1024, ..NetServerConfig::default() };
    let server = IngestServer::bind("127.0.0.1:0", &pool, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    const N: u64 = 30_000;
    let client = std::thread::spawn(move || {
        let cfg = session_cfg("starved", LifeguardKind::AddrCheck);
        let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
        fwd.stream(Benchmark::Gzip.trace(N)).unwrap();
        fwd.finish().unwrap()
    });
    let report = server.serve_connections(1);
    let fwd_report = client.join().unwrap();

    assert_eq!(fwd_report.server_records, N, "every record must arrive despite starvation");
    assert!(
        fwd_report.stats.credit_stalls > 0,
        "a 4 KB window against a 512-byte channel must stall the producer"
    );
    assert!(fwd_report.stats.credit_stall_nanos > 0);
    let session = &report.ingest.sessions[0];
    assert_eq!(session.records, N);
    assert!(report.ingest.errors.is_empty());
    pool.shutdown();
}

#[test]
fn teed_remote_lane_leaves_a_replayable_artifact() {
    let dir = std::env::temp_dir().join(format!("igm_net_tee_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let cfg = NetServerConfig { tee_dir: Some(dir.clone()), ..NetServerConfig::default() };
    let server = IngestServer::bind("127.0.0.1:0", &pool, cfg).unwrap();
    let addr = server.local_addr().unwrap();

    // Two tenants with the SAME name: their artifacts must not collide
    // (one would silently corrupt the other's frames).
    const N: u64 = 6_000;
    let clients: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let cfg = session_cfg("teed", LifeguardKind::AddrCheck);
                let mut fwd = TraceForwarder::connect(addr, &cfg).unwrap();
                fwd.stream(Benchmark::Gzip.trace(N)).unwrap();
                fwd.finish().unwrap()
            })
        })
        .collect();
    let report = server.serve_connections(2);
    for c in clients {
        c.join().unwrap();
    }
    assert!(report.ingest.errors.is_empty(), "{:?}", report.ingest.errors);
    let live = report.ingest.sessions.iter().find(|s| s.name == "teed").unwrap();
    assert_eq!(live.records, N);

    // Each artifact (disambiguated names) replays to the identical
    // result — both tenants streamed the same workload, so both files
    // must hold the same complete record stream.
    for filename in ["teed.igmt", "teed-2.igmt"] {
        let path = dir.join(filename);
        let replayed = igm_trace::replay_file(
            &pool,
            session_cfg("teed-replay", LifeguardKind::AddrCheck),
            &path,
        )
        .unwrap();
        assert_eq!(replayed.records, live.records, "{filename}");
        assert_eq!(replayed.violations, live.violations, "{filename}");
        assert_eq!(replayed.dispatch, live.dispatch, "{filename}");
    }
    pool.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
