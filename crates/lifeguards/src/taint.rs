//! TaintCheck: dynamic taint analysis for overwrite-based security exploits
//! (Table 1).
//!
//! All unverified program input (network/file reads) is marked *tainted*;
//! taint propagates through data movement and computation; an error is
//! raised when tainted data reaches a critical sink — an indirect jump
//! target, a `printf`-style format string, or a system-call argument.
//!
//! Metadata is two taint bits per application byte (1-byte elements per
//! 4-byte word: the paper's §7.1 packing, which makes the frequent 4-byte
//! IA32 operations single-byte metadata accesses) plus a per-byte taint
//! mask per register.
//!
//! Baseline handlers implement *generic* propagation (Figure 7's
//! `reg_taint[dest] |= mem_taint`). Under Inheritance Tracking the
//! hardware absorbs register-borne propagation and delivers only memory
//! metadata updates — the same handlers serve, since IT's transformed
//! events (`imm_to_mem`, `mem_to_mem`, …) are ordinary registered events.

use crate::cost::{CostSink, MetaMap};
use crate::violation::{SourceDesc, TaintSink, Violation};
use crate::{Lifeguard, LifeguardKind};
use igm_core::AccelConfig;
use igm_isa::{Annotation, MemRef, OpClass, Reg};
use igm_lba::{CheckKind, DeliveredEvent, Etct, Event, EventType, MetaSource};
use igm_shadow::{RegMeta, ShadowLayout, TwoLevelShadow};

/// Tainted 2-bit metadata value.
const TAINTED: u8 = 0b11;
/// Clean 2-bit metadata value.
const CLEAN: u8 = 0b00;

/// The TaintCheck lifeguard.
#[derive(Debug, Clone)]
pub struct TaintCheck {
    meta: MetaMap,
    /// Per-register taint mask: bit i = byte i tainted.
    regs: RegMeta<u8>,
    violations: Vec<Violation>,
    /// Tainted bytes currently tracked (for reports/tests).
    tainted_bytes: i64,
}

impl TaintCheck {
    /// Two taint bits per byte, 1-byte elements per word (the Figure 7
    /// packing), with a 12-bit level-1 index — the footprint-adaptive
    /// level-1 sizing of Figure 14(b) applied as the default (the paper's
    /// worked example uses 16 bits; see `ShadowLayout::taintcheck_fig7`).
    pub fn layout() -> ShadowLayout {
        ShadowLayout::for_coverage(12, 4, igm_shadow::layout::ElemSize::B1)
            .expect("constant layout is valid")
    }

    /// Builds TaintCheck under `cfg`.
    pub fn new(cfg: &AccelConfig) -> TaintCheck {
        TaintCheck {
            meta: MetaMap::new(
                TwoLevelShadow::new(Self::layout(), 0),
                cfg.lma.then_some(cfg.mtlb_entries),
            ),
            regs: RegMeta::new(0),
            violations: Vec::new(),
            tainted_bytes: 0,
        }
    }

    /// Whether any byte of `m` is tainted.
    pub fn mem_tainted(&self, m: MemRef) -> bool {
        self.meta.shadow().packed_any(m.addr, m.size.bytes(), TAINTED)
            || (0..m.size.bytes())
                .any(|i| self.meta.shadow().packed_get(m.addr.wrapping_add(i)) != CLEAN)
    }

    /// Whether register `r` holds tainted data.
    pub fn reg_tainted(&self, r: Reg) -> bool {
        self.regs.get(r.index()) != 0
    }

    fn mem_mask(&self, m: MemRef) -> u8 {
        let mut mask = 0u8;
        for i in 0..m.size.bytes().min(4) {
            if self.meta.shadow().packed_get(m.addr.wrapping_add(i)) != CLEAN {
                mask |= 1 << i;
            }
        }
        mask
    }

    fn write_mask(&mut self, m: MemRef, mask: u8) {
        for i in 0..m.size.bytes() {
            let a = m.addr.wrapping_add(i);
            let old = self.meta.shadow().packed_get(a);
            let new = if mask & (1 << i) != 0 { TAINTED } else { CLEAN };
            if old != new {
                self.tainted_bytes += if new == TAINTED { 1 } else { -1 };
                self.meta.shadow_mut().packed_set(a, new);
            }
        }
    }

    fn set_range(&mut self, base: u32, len: u32, v: u8) {
        for i in 0..len {
            let a = base.wrapping_add(i);
            let old = self.meta.shadow().packed_get(a);
            if old != v {
                self.tainted_bytes += if v == TAINTED { 1 } else { -1 };
                self.meta.shadow_mut().packed_set(a, v);
            }
        }
    }

    fn sink_of(kind: CheckKind) -> TaintSink {
        match kind {
            CheckKind::SyscallArg => TaintSink::SyscallArg,
            CheckKind::FormatString => TaintSink::FormatString,
            _ => TaintSink::JumpTarget,
        }
    }

    fn handle_prop(&mut self, pc: u32, op: &OpClass, cost: &mut CostSink) {
        let _ = pc;
        match *op {
            OpClass::ImmToReg { rd } => {
                cost.instr(1);
                cost.mem(self.regs.va(rd.index()));
                self.regs.set(rd.index(), 0);
            }
            OpClass::ImmToMem { dst } => {
                let va = self.meta.map(dst.addr, cost);
                cost.instr(2);
                cost.mem(va);
                self.write_mask(dst, 0);
            }
            OpClass::RegSelf { .. } | OpClass::MemSelf { .. } | OpClass::ReadOnly { .. } => {
                cost.instr(1);
            }
            OpClass::RegToReg { rs, rd } => {
                cost.instr(2);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(self.regs.va(rd.index()));
                let m = self.regs.get(rs.index());
                self.regs.set(rd.index(), m);
            }
            OpClass::RegToMem { rs, dst } => {
                let va = self.meta.map(dst.addr, cost);
                cost.instr(3);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(va);
                let mask = self.regs.get(rs.index());
                self.write_mask(dst, mask);
            }
            OpClass::MemToReg { src, rd } => {
                let va = self.meta.map(src.addr, cost);
                cost.instr(3);
                cost.mem(va);
                cost.mem(self.regs.va(rd.index()));
                let mask = self.mem_mask(src);
                self.regs.set(rd.index(), mask);
            }
            OpClass::MemToMem { src, dst } => {
                let sva = self.meta.map(src.addr, cost);
                let dva = self.meta.map(dst.addr, cost);
                cost.instr(4);
                cost.mem(sva);
                cost.mem(dva);
                let mask = self.mem_mask(src);
                self.write_mask(dst, mask);
            }
            OpClass::DestRegOpReg { rs, rd } => {
                cost.instr(2);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(self.regs.va(rd.index()));
                let m = self.regs.get(rd.index()) | self.regs.get(rs.index());
                self.regs.set(rd.index(), m);
            }
            OpClass::DestRegOpMem { src, rd } => {
                // Figure 7's handler: reg_taint[dest] |= mem_taint.
                let va = self.meta.map(src.addr, cost);
                cost.instr(2);
                cost.mem(va);
                let m = self.regs.get(rd.index()) | self.mem_mask(src);
                self.regs.set(rd.index(), m);
            }
            OpClass::DestMemOpReg { rs, dst } => {
                let va = self.meta.map(dst.addr, cost);
                cost.instr(3);
                cost.mem(self.regs.va(rs.index()));
                cost.mem(va);
                let mask = self.mem_mask(dst) | self.regs.get(rs.index());
                self.write_mask(dst, mask);
            }
            OpClass::Other { reads, writes, mem_read, mem_write } => {
                cost.instr(12);
                let mut any = mem_read.map(|m| self.mem_mask(m) != 0).unwrap_or(false);
                for r in reads.iter() {
                    any |= self.regs.get(r.index()) != 0;
                }
                let mask = if any { 0xf } else { 0 };
                for r in writes.iter() {
                    cost.mem(self.regs.va(r.index()));
                    self.regs.set(r.index(), mask);
                }
                if let Some(mw) = mem_write {
                    let va = self.meta.map(mw.addr, cost);
                    cost.mem(va);
                    self.write_mask(mw, mask);
                }
            }
        }
    }
}

impl Lifeguard for TaintCheck {
    fn kind(&self) -> LifeguardKind {
        LifeguardKind::TaintCheck
    }

    fn etct(&self) -> Etct {
        let mut etct = Etct::new();
        etct.register_all([
            EventType::ImmToReg,
            EventType::ImmToMem,
            EventType::RegToReg,
            EventType::RegToMem,
            EventType::MemToReg,
            EventType::MemToMem,
            EventType::DestRegOpReg,
            EventType::DestRegOpMem,
            EventType::DestMemOpReg,
            EventType::Other,
            // Critical sinks.
            EventType::CheckJumpTarget,
            EventType::CheckSyscallArg,
            EventType::CheckFormatString,
            // Rare events that rewrite taint.
            EventType::Malloc,
            EventType::ReadInput,
        ]);
        etct
    }

    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink) {
        match &ev.event {
            Event::Prop(op) => self.handle_prop(ev.pc, op, cost),
            Event::Check { kind, source } => {
                let tainted = match source {
                    MetaSource::Reg(r) => {
                        cost.instr(3);
                        cost.mem(self.regs.va(r.index()));
                        self.reg_tainted(*r)
                    }
                    MetaSource::Mem(m) => {
                        let va = self.meta.map(m.addr, cost);
                        cost.instr(3);
                        cost.mem(va);
                        self.mem_mask(*m) != 0
                    }
                };
                if tainted {
                    let source = match source {
                        MetaSource::Reg(r) => SourceDesc::Reg(r.index()),
                        MetaSource::Mem(m) => SourceDesc::Mem(*m),
                    };
                    self.violations.push(Violation::TaintedUse {
                        pc: ev.pc,
                        sink: Self::sink_of(*kind),
                        source,
                    });
                }
            }
            Event::Annot(Annotation::Malloc { base, size }) => {
                // Fresh allocations are untainted (Table 1).
                let va = self.meta.map(*base, cost);
                cost.instr(10 + size / 16); // word-granular metadata memset
                cost.mem(va);
                self.set_range(*base, *size, CLEAN);
            }
            Event::Annot(Annotation::ReadInput { base, len }) => {
                // Untrusted input: taint the buffer.
                let va = self.meta.map(*base, cost);
                cost.instr(10 + len / 16);
                cost.mem(va);
                self.set_range(*base, *len, TAINTED);
            }
            _ => cost.instr(1),
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    fn premark_region(&mut self, _base: u32, _len: u32) {
        // Loader-established memory is untainted, which is the default.
    }

    fn metadata_bytes(&self) -> u64 {
        self.meta.metadata_bytes() + 8
    }
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        Some(crate::ShardableLifeguard::snapshot_shard(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lg: &mut TaintCheck, pc: u32, event: Event) {
        let mut c = CostSink::new();
        lg.handle(&DeliveredEvent::new(pc, event), &mut c);
    }

    fn taint_input(lg: &mut TaintCheck, base: u32, len: u32) {
        run(lg, 0, Event::Annot(Annotation::ReadInput { base, len }));
    }

    #[test]
    fn input_taints_and_malloc_clears() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9000, 64);
        assert!(lg.mem_tainted(MemRef::word(0x9000)));
        run(&mut lg, 0, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 }));
        assert!(!lg.mem_tainted(MemRef::word(0x9000)));
    }

    #[test]
    fn taint_flows_through_load_store_chain() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9000, 4);
        run(&mut lg, 1, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        assert!(lg.reg_tainted(Reg::Eax));
        run(&mut lg, 2, Event::Prop(OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }));
        run(&mut lg, 3, Event::Prop(OpClass::RegToMem { rs: Reg::Ecx, dst: MemRef::word(0xa000) }));
        assert!(lg.mem_tainted(MemRef::word(0xa000)));
        // Overwriting with a constant clears.
        run(&mut lg, 4, Event::Prop(OpClass::ImmToMem { dst: MemRef::word(0xa000) }));
        assert!(!lg.mem_tainted(MemRef::word(0xa000)));
    }

    #[test]
    fn generic_binary_op_ors_taint() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9000, 4);
        run(
            &mut lg,
            1,
            Event::Prop(OpClass::DestRegOpMem { src: MemRef::word(0x9000), rd: Reg::Edx }),
        );
        assert!(lg.reg_tainted(Reg::Edx));
        run(&mut lg, 2, Event::Prop(OpClass::DestRegOpReg { rs: Reg::Edx, rd: Reg::Ebx }));
        assert!(lg.reg_tainted(Reg::Ebx));
    }

    #[test]
    fn tainted_jump_target_is_flagged() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9000, 4);
        run(&mut lg, 1, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        run(
            &mut lg,
            2,
            Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Reg(Reg::Eax) },
        );
        assert_eq!(lg.violations().len(), 1);
        assert!(matches!(
            lg.violations()[0],
            Violation::TaintedUse { sink: TaintSink::JumpTarget, .. }
        ));
    }

    #[test]
    fn clean_jump_target_is_silent() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        run(
            &mut lg,
            1,
            Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Reg(Reg::Eax) },
        );
        run(
            &mut lg,
            2,
            Event::Check {
                kind: CheckKind::FormatString,
                source: MetaSource::Mem(MemRef::word(0x8100_0000)),
            },
        );
        assert!(lg.violations().is_empty());
    }

    #[test]
    fn format_string_sink() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9000, 16);
        run(
            &mut lg,
            3,
            Event::Check {
                kind: CheckKind::FormatString,
                source: MetaSource::Mem(MemRef::byte(0x9004)),
            },
        );
        assert!(matches!(
            lg.violations()[0],
            Violation::TaintedUse { sink: TaintSink::FormatString, .. }
        ));
    }

    #[test]
    fn byte_granular_taint_and_zero_extension() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9001, 1); // only byte 1 of the word
                                         // 1-byte load of the clean byte 0: clean.
        run(&mut lg, 1, Event::Prop(OpClass::MemToReg { src: MemRef::byte(0x9000), rd: Reg::Eax }));
        assert!(!lg.reg_tainted(Reg::Eax));
        // 4-byte load picks up the tainted byte.
        run(&mut lg, 2, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Ecx }));
        assert!(lg.reg_tainted(Reg::Ecx));
        // Storing only the low byte of the (byte-1-tainted) register leaves
        // the destination clean.
        run(&mut lg, 3, Event::Prop(OpClass::RegToMem { rs: Reg::Ecx, dst: MemRef::byte(0xa000) }));
        assert!(!lg.mem_tainted(MemRef::byte(0xa000)));
    }

    #[test]
    fn opaque_op_propagates_conservatively() {
        let mut lg = TaintCheck::new(&AccelConfig::baseline());
        taint_input(&mut lg, 0x9000, 4);
        run(&mut lg, 1, Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax }));
        let set = igm_isa::RegSet::from_regs([Reg::Eax, Reg::Ecx]);
        run(
            &mut lg,
            2,
            Event::Prop(OpClass::Other {
                reads: set,
                writes: set,
                mem_read: None,
                mem_write: None,
            }),
        );
        assert!(lg.reg_tainted(Reg::Ecx), "xchg must propagate taint");
    }

    #[test]
    fn etct_omits_self_events() {
        let lg = TaintCheck::new(&AccelConfig::baseline());
        let etct = lg.etct();
        // Figure 4: no event is delivered for the two "self" operations.
        assert!(!etct.is_registered(EventType::RegSelf));
        assert!(!etct.is_registered(EventType::MemSelf));
        assert!(!etct.is_registered(EventType::MemRead));
        assert!(etct.is_registered(EventType::DestRegOpMem));
    }
}
