//! Offline API-compatible shim for the `proptest` crate.
//!
//! Random property testing without shrinking: the [`proptest!`] macro runs
//! each property for [`ProptestConfig::cases`] generated inputs; a failing
//! assertion panics with the `Debug` representation of the generated inputs
//! for that case. The strategy combinators cover exactly the surface this
//! workspace uses — integer ranges, tuples, [`Just`], `prop_map`,
//! [`collection::vec`], [`option::of`], [`bool::weighted`], [`any`] and the
//! (optionally weighted) [`prop_oneof!`] union.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64), seeded per test from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test's name).
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name, so each property gets its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-case-generation quality.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (for [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe alias used by [`Union`].
pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

/// Object-safe subset of [`Strategy`].
pub trait DynStrategy {
    type Value: Debug;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().dyn_generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of same-typed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll bounded by the weight total")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                let v = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for [`vec`] (only `Range<usize>` is needed here).
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` from `inner` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The [`of`] strategy.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p));
        Weighted { p }
    }

    /// The [`weighted`] strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.p
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// item becomes an ordinary test running the body for each generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // `$meta` re-emits the user's attributes, including their `#[test]`.
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                // Render the inputs before the body runs: the body may move
                // them, and on panic we still want the failing case printed.
                let inputs = ::std::format!(
                    concat!("proptest case {} failed for inputs:"
                        $(, "\n  ", stringify!($arg), " = {:?}")+),
                    case $(, &$arg)+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!("{inputs}");
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when `cond` is false. (Real proptest re-draws;
/// skipping keeps the shim simple and is sound for the assumption rates in
/// this workspace.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = u32> {
        0u32..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(v in 5u32..15, w in 3u8..=7) {
            prop_assert!((5..15).contains(&v));
            prop_assert!((3..=7).contains(&w));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((small(), any::<bool>()).prop_map(|(a, b)| (a, b)), 1..20),
            o in crate::option::of(Just(7u32)),
            pick in prop_oneof![2 => Just(0u8), 1 => 1u8..4],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, _) in &v {
                prop_assert!(*a < 10);
            }
            if let Some(x) = o {
                prop_assert_eq!(x, 7);
            }
            prop_assert!(pick < 4);
            prop_assume!(pick == 0);
            prop_assert_eq!(pick, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
