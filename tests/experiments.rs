//! Shape-level checks of the paper's experimental claims, at reduced scale
//! (the full-scale numbers are produced by the `igm-bench` binaries and
//! recorded in `EXPERIMENTS.md`).

use igm::accel::{AccelConfig, IfGeometry, ItConfig};
use igm::lifeguards::LifeguardKind;
use igm::profiling::{
    if_reduction, it_reduction, mtlb_flexible, mtlb_miss_rate, trace_footprint, CcMode,
};
use igm::sim::{SimConfig, Simulator};
use igm::workload::{Benchmark, MtBenchmark};

const N: u64 = 60_000;

/// Figure 11's monotone staircase: each added technique helps (or at least
/// does not hurt) every lifeguard it applies to.
#[test]
fn techniques_compose_monotonically() {
    for kind in [LifeguardKind::MemCheck, LifeguardKind::TaintCheck] {
        let b = Benchmark::Gzip;
        let steps = [
            AccelConfig::baseline(),
            AccelConfig::lma(),
            AccelConfig::lma_it(ItConfig::taint_style()),
            AccelConfig::full(ItConfig::taint_style()),
        ];
        let slowdowns: Vec<f64> = steps
            .iter()
            .map(|a| Simulator::new(SimConfig::with_accel(kind, *a)).run_benchmark(b, N).slowdown())
            .collect();
        for w in slowdowns.windows(2) {
            assert!(
                w[1] <= w[0] * 1.02,
                "{kind}: adding a technique must not slow things down: {slowdowns:?}"
            );
        }
    }
}

/// §7.2: MemCheck is the heaviest lifeguard (its events are a superset of
/// AddrCheck's and TaintCheck's).
#[test]
fn memcheck_is_the_most_expensive_lifeguard() {
    let b = Benchmark::Vortex;
    let slow = |kind| Simulator::new(SimConfig::baseline(kind)).run_benchmark(b, N).slowdown();
    let mc = slow(LifeguardKind::MemCheck);
    assert!(mc > slow(LifeguardKind::AddrCheck));
    assert!(mc > slow(LifeguardKind::TaintCheck));
}

/// §7.1: detailed tracking costs more than plain TaintCheck, yet IT still
/// rescues it — the flexibility argument against value-based hardware.
#[test]
fn detailed_tracking_costlier_but_accelerated() {
    let b = Benchmark::Gcc;
    let plain = Simulator::new(SimConfig::baseline(LifeguardKind::TaintCheck)).run_benchmark(b, N);
    let detailed =
        Simulator::new(SimConfig::baseline(LifeguardKind::TaintCheckDetailed)).run_benchmark(b, N);
    assert!(detailed.slowdown() > plain.slowdown());
    let detailed_opt =
        Simulator::new(SimConfig::optimized(LifeguardKind::TaintCheckDetailed)).run_benchmark(b, N);
    assert!(detailed_opt.slowdown() < detailed.slowdown() / 1.5);
}

/// §8: the memory-bound benchmark has the smallest monitoring overhead.
/// (Needs a steady-state run length: mcf's huge footprint makes short runs
/// cold-start dominated.)
#[test]
fn mcf_overhead_is_smallest() {
    let n = 250_000;
    let cfg = SimConfig::optimized(LifeguardKind::AddrCheck);
    let mcf = Simulator::new(cfg.clone()).run_benchmark(Benchmark::Mcf, n).slowdown();
    for b in [Benchmark::Crafty, Benchmark::Vortex, Benchmark::Gzip] {
        let other = Simulator::new(cfg.clone()).run_benchmark(b, n).slowdown();
        assert!(
            mcf <= other + 0.15,
            "mcf ({mcf:.2}) should be among the cheapest, {b} was {other:.2}"
        );
    }
}

/// Figure 13(a): IT removes a large fraction of propagation events for
/// every benchmark.
#[test]
fn it_reduction_band_holds_across_suite() {
    for b in Benchmark::ALL {
        let r = it_reduction(b.trace(N), ItConfig::taint_style());
        assert!((0.30..=0.95).contains(&r), "{b}: {r:.2}");
    }
}

/// Figure 13(b): the filter curve rises with capacity and saturates.
#[test]
fn if_curve_rises_and_saturates() {
    let b = Benchmark::Parser;
    let mut prev = 0.0;
    for e in [8usize, 32, 128] {
        let r = if_reduction(b.trace(N), IfGeometry::fully_associative(e), CcMode::Combined);
        assert!(r >= prev - 0.02, "{e} entries: {r:.2} after {prev:.2}");
        prev = r;
    }
    assert!(prev > 0.35, "128-entry filter should remove a third of checks: {prev:.2}");
}

/// Figure 14: fixed-width misses are worst for mcf; the flexible design is
/// near-negligible for every benchmark.
#[test]
fn mtlb_flexible_design_wins() {
    let mcf20 = mtlb_miss_rate(Benchmark::Mcf.trace(N), 20, 16);
    for b in [Benchmark::Crafty, Benchmark::Gzip] {
        let other = mtlb_miss_rate(b.trace(N), 20, 16);
        assert!(mcf20 >= other, "mcf must have the worst fixed-width miss rate");
    }
    for b in Benchmark::ALL {
        let fp = trace_footprint(b.trace(N));
        let (bits, rate) = mtlb_flexible(&fp, b.trace(N), 64);
        assert!((8..=20).contains(&bits));
        // mcf's footprint is so sparse that even the flexible width keeps a
        // small miss rate (as in the paper's Figure 14(b) mcf row); for
        // everything else the flexible design is near-negligible.
        let bound = if b == Benchmark::Mcf { 0.12 } else { 0.02 };
        assert!(rate < bound, "{b}: flexible miss rate {rate:.4}");
    }
}

/// LockSet on the Table 3 suite: overhead is reduced by the applicable
/// techniques, and no benchmark reports a (false) race.
#[test]
fn lockset_suite_behaviour() {
    for b in MtBenchmark::ALL {
        let base =
            Simulator::new(SimConfig::baseline(LifeguardKind::LockSet)).run_mt_benchmark(b, N);
        let opt =
            Simulator::new(SimConfig::optimized(LifeguardKind::LockSet)).run_mt_benchmark(b, N);
        assert!(opt.slowdown() <= base.slowdown(), "{b}");
        assert!(base.violations.is_empty() && opt.violations.is_empty(), "{b}");
    }
}

/// Determinism: the same configuration yields bit-identical reports.
#[test]
fn simulation_is_deterministic() {
    let run = || {
        let r = Simulator::new(SimConfig::optimized(LifeguardKind::MemCheck))
            .run_benchmark(Benchmark::Twolf, N);
        (r.timing.monitored_cycles, r.dispatch.delivered, r.metadata_bytes)
    };
    assert_eq!(run(), run());
}
