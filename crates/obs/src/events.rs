//! The structured lifecycle-event ring: *what happened*, not just how
//! many times.
//!
//! Counters answer "how much"; operators debugging a live monitor also
//! need the discrete story — which tenant's lane failed and why, which
//! handshake was rejected, when sessions opened and closed, where the
//! stealing scheduler moved work. [`EventRing`] is a bounded ring of
//! typed [`ObsEvent`]s with monotone sequence numbers: producers record
//! from any thread (one short mutex on a rare path — never the per-record
//! hot path), the ring overwrites its oldest entries when full (counting
//! the drops), and readers cursor through it with
//! [`EventRing::since`] — which is how the stats endpoint serves
//! `/events.json?since=N` without ever blocking a producer.

use igm_span::{RecordId, SpanRecord};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One structured lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A pool session opened.
    SessionOpen {
        /// Pool-wide session id.
        session: u64,
        /// Tenant label.
        tenant: String,
        /// Monitoring lifeguard's name.
        lifeguard: String,
    },
    /// A pool session finalized.
    SessionClose {
        /// Pool-wide session id.
        session: u64,
        /// Tenant label.
        tenant: String,
        /// Records the session processed.
        records: u64,
        /// Violations it reported.
        violations: u64,
    },
    /// The work-stealing scheduler migrated a session between workers.
    Steal {
        /// The migrated session.
        session: u64,
        /// Worker the session was taken from.
        from_worker: usize,
        /// Worker that now owns it.
        to_worker: usize,
    },
    /// An ingest lane failed mid-stream (disconnect, corrupt frame, tee
    /// write failure); the lane was finalized with what it had published.
    LaneFailure {
        /// Lane (tenant) name.
        lane: String,
        /// The error, stringified at failure time.
        error: String,
    },
    /// A connection was refused before becoming a lane.
    HandshakeReject {
        /// Peer address.
        peer: String,
        /// Why it was refused.
        reason: String,
    },
    /// A hot session switched to intra-session epoch pipelining: the
    /// worker now runs an update-only spine and streams snapshot-check
    /// epoch jobs to the pool.
    PipelineEnter {
        /// The session that went hot.
        session: u64,
        /// Tenant label.
        tenant: String,
    },
    /// A pipelined session's backlog drained; it returned to plain
    /// sequential pumping.
    PipelineExit {
        /// The session.
        session: u64,
        /// Tenant label.
        tenant: String,
        /// Epoch jobs shipped during this pipelined stretch.
        epochs: u64,
    },
    /// A lifeguard reported a violation.
    Violation {
        /// Reporting session.
        session: u64,
        /// Tenant label.
        tenant: String,
        /// Human-readable violation description.
        detail: String,
        /// Global record id of the faulting trace record, when the
        /// session carries a durable trace identity and the violation
        /// anchors to a record — the join key against the trace lake
        /// (`/lake/query?around=` replays its neighborhood).
        record: Option<RecordId>,
        /// The offending frame's completed span chain, snapshotted from
        /// the flight recorder at violation time (empty when the frame
        /// was unsampled or span recording is off) — per-frame
        /// provenance attached to the event itself.
        spans: Vec<SpanRecord>,
    },
}

impl EventKind {
    /// Stable kind tag (the `"kind"` field of the JSON export).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SessionOpen { .. } => "session_open",
            EventKind::SessionClose { .. } => "session_close",
            EventKind::Steal { .. } => "steal",
            EventKind::LaneFailure { .. } => "lane_failure",
            EventKind::HandshakeReject { .. } => "handshake_reject",
            EventKind::PipelineEnter { .. } => "pipeline_enter",
            EventKind::PipelineExit { .. } => "pipeline_exit",
            EventKind::Violation { .. } => "violation",
        }
    }
}

/// One ring entry: an [`EventKind`] stamped with its sequence number and
/// ring-relative time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotone sequence number (gaps mean the ring overwrote entries).
    pub seq: u64,
    /// Nanoseconds since the ring (registry) was created.
    pub at_nanos: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<ObsEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, shared ring of [`ObsEvent`]s. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct EventRing {
    inner: Arc<Mutex<RingInner>>,
    capacity: usize,
    started: Instant,
}

/// What one [`EventRing::since`] cursor read returned.
#[derive(Debug, Clone)]
pub struct EventsSnapshot {
    /// Events with `seq >= since`, oldest first.
    pub events: Vec<ObsEvent>,
    /// Events ever overwritten before being served (ring-wide).
    pub dropped: u64,
    /// The next sequence number the ring will assign — pass as the next
    /// read's `since` to resume exactly where this one stopped.
    pub next_seq: u64,
}

impl EventRing {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A ring retaining the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "a zero-capacity event ring records nothing");
        EventRing {
            inner: Arc::new(Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            })),
            capacity,
            started: Instant::now(),
        }
    }

    /// Records one event, assigning it the next sequence number. The
    /// oldest entry is overwritten when the ring is full.
    pub fn record(&self, kind: EventKind) {
        let at_nanos = self.started.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(ObsEvent { seq, at_nanos, kind });
    }

    /// Events recorded so far (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Reads every retained event with `seq >= since`, oldest first,
    /// without consuming anything (the ring itself is the retention
    /// policy). `since = 0` reads everything retained.
    pub fn since(&self, since: u64) -> EventsSnapshot {
        let inner = self.inner.lock().unwrap();
        EventsSnapshot {
            events: inner.buf.iter().filter(|e| e.seq >= since).cloned().collect(),
            dropped: inner.dropped,
            next_seq: inner.next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_and_overwrite() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.record(EventKind::Steal { session: i, from_worker: 0, to_worker: 1 });
        }
        let snap = ring.since(0);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.next_seq, 5);
        assert_eq!(snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3, 4]);

        // Cursor resume: nothing new since next_seq.
        assert!(ring.since(snap.next_seq).events.is_empty());
        ring.record(EventKind::LaneFailure { lane: "x".into(), error: "boom".into() });
        let more = ring.since(snap.next_seq);
        assert_eq!(more.events.len(), 1);
        assert_eq!(more.events[0].seq, 5);
        assert_eq!(more.events[0].kind.name(), "lane_failure");
    }

    #[test]
    fn empty_ring_reads_cleanly() {
        let ring = EventRing::new(4);
        for since in [0, 1, u64::MAX] {
            let snap = ring.since(since);
            assert!(snap.events.is_empty());
            assert_eq!(snap.dropped, 0);
            assert_eq!(snap.next_seq, 0);
        }
        assert_eq!(ring.recorded(), 0);
    }

    #[test]
    fn cursor_past_head_is_empty_but_keeps_counters() {
        let ring = EventRing::new(2);
        for i in 0..3u64 {
            ring.record(EventKind::Steal { session: i, from_worker: 0, to_worker: 1 });
        }
        // next_seq is 3; a reader asking for the future gets nothing, but
        // the cursor/drop bookkeeping still tells it where the ring is.
        let snap = ring.since(100);
        assert!(snap.events.is_empty());
        assert_eq!(snap.next_seq, 3);
        assert_eq!(snap.dropped, 1);
    }

    #[test]
    fn cursor_inside_overwritten_region_reports_dropped() {
        let ring = EventRing::new(3);
        for i in 0..10u64 {
            ring.record(EventKind::Steal { session: i, from_worker: 0, to_worker: 1 });
        }
        // Retained: seqs 7, 8, 9. A reader resuming from seq 2 (long
        // overwritten) sees only what survived, and `dropped` tells it
        // the ring lost ground: 10 recorded - 3 retained = 7 overwritten.
        let snap = ring.since(2);
        assert_eq!(snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(snap.dropped, 7);
        assert_eq!(snap.next_seq, 10);
        // The resumed cursor then pages cleanly: nothing new yet.
        assert!(ring.since(snap.next_seq).events.is_empty());
    }

    #[test]
    fn wraparound_keeps_exactly_capacity_newest() {
        let ring = EventRing::new(4);
        for i in 0..100u64 {
            ring.record(EventKind::SessionClose {
                session: i,
                tenant: format!("t{i}"),
                records: i,
                violations: 0,
            });
        }
        let snap = ring.since(0);
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![96, 97, 98, 99]);
        assert_eq!(snap.dropped, 96);
        assert_eq!(ring.recorded(), 100);
        // Sequence numbers stay monotone across the wrap.
        assert!(snap.events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }
}
