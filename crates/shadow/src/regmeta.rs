//! Per-register metadata ("*initialized* state per register", "*tainted*
//! state per register" — paper Table 1).
//!
//! Register metadata is a small software array in lifeguard space; like the
//! shadow maps it exposes stable metadata virtual addresses for the timing
//! model.

/// Base of the register-metadata array in simulated lifeguard space.
pub const REG_META_BASE: u32 = 0x0fff_f000;

/// Metadata values for the eight general-purpose registers.
///
/// The register index convention matches `igm_isa::Reg::index`, but the type
/// is generic and index-based so this crate stays ISA-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegMeta<T> {
    vals: [T; 8],
}

impl<T: Copy + Default> Default for RegMeta<T> {
    fn default() -> RegMeta<T> {
        RegMeta::new(T::default())
    }
}

impl<T: Copy> RegMeta<T> {
    /// Creates the array with every register set to `init`.
    pub fn new(init: T) -> RegMeta<T> {
        RegMeta { vals: [init; 8] }
    }

    /// Metadata value of register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn get(&self, idx: usize) -> T {
        self.vals[idx]
    }

    /// Sets the metadata value of register `idx`.
    pub fn set(&mut self, idx: usize, v: T) {
        self.vals[idx] = v;
    }

    /// Resets every register to `v`.
    pub fn fill(&mut self, v: T) {
        self.vals = [v; 8];
    }

    /// Metadata virtual address of register `idx`'s slot, for cache
    /// modelling of handler accesses.
    pub fn va(&self, idx: usize) -> u32 {
        assert!(idx < 8);
        REG_META_BASE + (idx * std::mem::size_of::<T>()) as u32
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        self.vals.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_fill() {
        let mut m: RegMeta<bool> = RegMeta::default();
        assert!(!m.get(0));
        m.set(3, true);
        assert!(m.get(3));
        m.fill(true);
        assert!(m.iter().all(|(_, v)| v));
    }

    #[test]
    fn vas_are_contiguous_slots() {
        let m: RegMeta<u32> = RegMeta::new(0);
        assert_eq!(m.va(0), REG_META_BASE);
        assert_eq!(m.va(1), REG_META_BASE + 4);
        let m8: RegMeta<u64> = RegMeta::new(0);
        assert_eq!(m8.va(2), REG_META_BASE + 16);
    }

    #[test]
    #[should_panic]
    fn va_bounds_checked() {
        let m: RegMeta<u8> = RegMeta::new(0);
        let _ = m.va(8);
    }
}
