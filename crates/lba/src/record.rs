//! Compressed log-record size model.
//!
//! An LBA record conceptually contains the program counter, instruction
//! type, operand identifiers and data addresses. The paper's compressor
//! brings the average record below one byte (§3, Table 2: "assuming 1B per
//! compressed record"); we adopt the same working assumption for
//! instruction records and charge a fixed, larger size for software-inserted
//! annotation records, which carry uncompressed payloads (addresses,
//! lengths) and are rare.

use igm_isa::{TraceEntry, TraceOp};

/// Modelled size of a compressed instruction record, in bytes.
pub const INSTR_RECORD_BYTES: u32 = 1;

/// Modelled size of an annotation record, in bytes (type byte + two 32-bit
/// payload words).
pub const ANNOTATION_RECORD_BYTES: u32 = 9;

/// Size in bytes that `entry` occupies in the log buffer.
pub fn compressed_size(entry: &TraceEntry) -> u32 {
    match entry.op {
        TraceOp::Annot(_) => ANNOTATION_RECORD_BYTES,
        _ => INSTR_RECORD_BYTES,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{Annotation, MemRef, OpClass, Reg};

    #[test]
    fn instruction_records_are_one_byte() {
        let e = TraceEntry::op(0x1000, OpClass::ImmToReg { rd: Reg::Eax });
        assert_eq!(compressed_size(&e), 1);
        let e = TraceEntry::op(
            0x1000,
            OpClass::MemToMem { src: MemRef::word(0), dst: MemRef::word(4) },
        );
        assert_eq!(compressed_size(&e), 1);
    }

    #[test]
    fn annotation_records_are_larger() {
        let e = TraceEntry::annot(0x1000, Annotation::Malloc { base: 0x9000, size: 64 });
        assert_eq!(compressed_size(&e), ANNOTATION_RECORD_BYTES);
    }
}
