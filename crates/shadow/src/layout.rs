//! Two-level metadata address arithmetic.
//!
//! An application address splits into three fields (paper Figure 9):
//!
//! ```text
//!  31                                0
//! +-----------+-----------+----------+
//! | level-1   | level-2   | in-elem  |
//! | index     | index     | offset   |
//! +-----------+-----------+----------+
//!   l1_bits     l2_bits     off_bits
//! ```
//!
//! Each level-2 *element* holds `elem_size` bytes of metadata covering
//! `2^off_bits` application bytes. A level-2 *chunk* holds `2^l2_bits`
//! elements. The metadata address of an application address `a` within its
//! chunk is `((a & l2_field_mask) >> off_bits) * elem_size`.

use std::fmt;

/// Metadata element sizes supported by the `lma_config` instruction
/// (2-bit field in the LMA config register, paper Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ElemSize {
    B1 = 0,
    B2 = 1,
    B4 = 2,
    B8 = 3,
}

impl ElemSize {
    /// Size in bytes.
    #[inline]
    pub fn bytes(self) -> u32 {
        1 << (self as u32)
    }

    /// log2 of the size in bytes.
    #[inline]
    pub fn log2(self) -> u32 {
        self as u32
    }

    /// Builds from a byte count (1, 2, 4 or 8).
    pub fn from_bytes(b: u32) -> Option<ElemSize> {
        match b {
            1 => Some(ElemSize::B1),
            2 => Some(ElemSize::B2),
            4 => Some(ElemSize::B4),
            8 => Some(ElemSize::B8),
            _ => None,
        }
    }
}

/// Errors constructing a [`ShadowLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// `level1_bits + level2_bits` exceeded 32.
    FieldsTooWide { level1_bits: u8, level2_bits: u8 },
    /// One of the fields was zero (degenerate layouts are rejected).
    ZeroField,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::FieldsTooWide { level1_bits, level2_bits } => write!(
                f,
                "level1 ({level1_bits}) + level2 ({level2_bits}) bits exceed the 32-bit address"
            ),
            LayoutError::ZeroField => write!(f, "level1/level2 bit fields must be non-zero"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// The two-level shadow-memory geometry: exactly the information held in the
/// LMA config register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShadowLayout {
    level1_bits: u8,
    level2_bits: u8,
    elem_size: ElemSize,
}

impl ShadowLayout {
    /// Creates a layout from the raw field widths.
    ///
    /// # Errors
    ///
    /// Rejects layouts whose index fields exceed 32 bits or are zero.
    pub fn new(
        level1_bits: u8,
        level2_bits: u8,
        elem_size: ElemSize,
    ) -> Result<ShadowLayout, LayoutError> {
        if level1_bits == 0 || level2_bits == 0 {
            return Err(LayoutError::ZeroField);
        }
        if (level1_bits as u32) + (level2_bits as u32) > 32 {
            return Err(LayoutError::FieldsTooWide { level1_bits, level2_bits });
        }
        Ok(ShadowLayout { level1_bits, level2_bits, elem_size })
    }

    /// Creates a layout from the *coverage* view: how many application bytes
    /// one metadata element represents (`app_bytes_per_elem`, a power of two)
    /// and the element size, given the level-1 width. The level-2 width is
    /// derived so the three fields tile the 32-bit address.
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] for inconsistent widths.
    pub fn for_coverage(
        level1_bits: u8,
        app_bytes_per_elem: u32,
        elem_size: ElemSize,
    ) -> Result<ShadowLayout, LayoutError> {
        assert!(app_bytes_per_elem.is_power_of_two(), "app_bytes_per_elem must be a power of two");
        let off = app_bytes_per_elem.trailing_zeros() as u8;
        let total = 32u8.checked_sub(level1_bits + off).ok_or(LayoutError::ZeroField)?;
        ShadowLayout::new(level1_bits, total, elem_size)
    }

    /// The TaintCheck layout of the paper's Figure 7: 16-bit level-1 index,
    /// 14-bit level-2 index, 2-bit in-byte offset, 1-byte elements (2-bit
    /// taint per application byte).
    pub fn taintcheck_fig7() -> ShadowLayout {
        ShadowLayout::new(16, 14, ElemSize::B1).expect("constant layout is valid")
    }

    /// Level-1 index width in bits.
    #[inline]
    pub fn level1_bits(&self) -> u8 {
        self.level1_bits
    }

    /// Level-2 index width in bits.
    #[inline]
    pub fn level2_bits(&self) -> u8 {
        self.level2_bits
    }

    /// In-element offset width in bits.
    #[inline]
    pub fn offset_bits(&self) -> u8 {
        32 - self.level1_bits - self.level2_bits
    }

    /// Metadata element size.
    #[inline]
    pub fn elem_size(&self) -> ElemSize {
        self.elem_size
    }

    /// Application bytes covered by one metadata element.
    #[inline]
    pub fn app_bytes_per_elem(&self) -> u32 {
        1 << self.offset_bits()
    }

    /// Metadata bits per application byte
    /// (`elem_size * 8 / app_bytes_per_elem`); zero if the element is
    /// smaller than a bit per byte.
    #[inline]
    pub fn bits_per_app_byte(&self) -> u32 {
        (self.elem_size.bytes() * 8) >> self.offset_bits()
    }

    /// Number of level-1 entries.
    #[inline]
    pub fn level1_entries(&self) -> u32 {
        1 << self.level1_bits
    }

    /// Size of one level-2 chunk in metadata bytes.
    #[inline]
    pub fn chunk_bytes(&self) -> u32 {
        1 << (self.level2_bits as u32 + self.elem_size.log2())
    }

    /// Application bytes covered by one level-2 chunk.
    #[inline]
    pub fn chunk_app_span(&self) -> u64 {
        1u64 << (32 - self.level1_bits as u32)
    }

    /// Level-1 index of an application address.
    #[inline]
    pub fn l1_index(&self, app_addr: u32) -> u32 {
        app_addr >> (32 - self.level1_bits as u32)
    }

    /// Element index of an application address within its chunk.
    #[inline]
    pub fn elem_index(&self, app_addr: u32) -> u32 {
        let off = self.offset_bits() as u32;
        (app_addr >> off) & ((1u32 << self.level2_bits) - 1)
    }

    /// Byte offset of the element within its chunk — this plus the chunk
    /// base address is what both the software walk and the hardware `lma`
    /// compute.
    #[inline]
    pub fn elem_offset_in_chunk(&self, app_addr: u32) -> u32 {
        self.elem_index(app_addr) << self.elem_size.log2()
    }

    /// In-element byte offset of an application byte, for layouts with
    /// multiple application bytes per element byte this is the *bit* packing
    /// handled by [`crate::TwoLevelShadow::packed_get`].
    #[inline]
    pub fn offset_in_elem(&self, app_addr: u32) -> u32 {
        app_addr & (self.app_bytes_per_elem() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_layout_fields() {
        let l = ShadowLayout::taintcheck_fig7();
        assert_eq!(l.level1_bits(), 16);
        assert_eq!(l.level2_bits(), 14);
        assert_eq!(l.offset_bits(), 2);
        assert_eq!(l.app_bytes_per_elem(), 4);
        assert_eq!(l.bits_per_app_byte(), 2);
        assert_eq!(l.chunk_bytes(), 16 * 1024);
        assert_eq!(l.chunk_app_span(), 64 * 1024);
    }

    #[test]
    fn fig9_worked_example() {
        // Paper Figure 9: app address 0xb3fb703a with 16/14/2 split and
        // 1-byte elements maps to chunk offset (0x703a & 0xfffc) >> 2.
        let l = ShadowLayout::taintcheck_fig7();
        let addr = 0xb3fb_703a;
        assert_eq!(l.l1_index(addr), 0xb3fb);
        assert_eq!(l.elem_offset_in_chunk(addr), 0x1c0e);
        // With the chunk allocated at 0x08046000 the metadata address is
        // 0x08047c0e, as in the figure.
        assert_eq!(0x0804_6000 + l.elem_offset_in_chunk(addr), 0x0804_7c0e);
    }

    #[test]
    fn coverage_constructor_matches_manual() {
        // AddrCheck: 1 accessible bit per byte => 1-byte elements covering 8
        // application bytes.
        let l = ShadowLayout::for_coverage(16, 8, ElemSize::B1).unwrap();
        assert_eq!(l.offset_bits(), 3);
        assert_eq!(l.level2_bits(), 13);
        assert_eq!(l.bits_per_app_byte(), 1);

        // Detailed TaintCheck: 8-byte elements per 4-byte word.
        let l = ShadowLayout::for_coverage(16, 4, ElemSize::B8).unwrap();
        assert_eq!(l.level2_bits(), 14);
        assert_eq!(l.chunk_bytes(), 128 * 1024);
        assert_eq!(l.bits_per_app_byte(), 16);
    }

    #[test]
    fn invalid_layouts_rejected() {
        assert!(matches!(
            ShadowLayout::new(20, 14, ElemSize::B1),
            Err(LayoutError::FieldsTooWide { .. })
        ));
        assert!(matches!(ShadowLayout::new(0, 14, ElemSize::B1), Err(LayoutError::ZeroField)));
    }

    #[test]
    fn elem_index_wraps_within_chunk() {
        let l = ShadowLayout::taintcheck_fig7();
        // Consecutive words map to consecutive elements.
        assert_eq!(l.elem_index(0x0001_0000), 0);
        assert_eq!(l.elem_index(0x0001_0004), 1);
        assert_eq!(l.elem_index(0x0001_0005), 1); // same word
        assert_eq!(l.elem_index(0x0001_fffc), (1 << 14) - 1);
        // Next address rolls into the next chunk, element 0.
        assert_eq!(l.elem_index(0x0002_0000), 0);
        assert_eq!(l.l1_index(0x0002_0000), 2);
    }

    #[test]
    fn elem_size_round_trip() {
        for b in [1u32, 2, 4, 8] {
            assert_eq!(ElemSize::from_bytes(b).unwrap().bytes(), b);
        }
        assert_eq!(ElemSize::from_bytes(3), None);
        assert_eq!(ElemSize::B8.log2(), 3);
    }
}
