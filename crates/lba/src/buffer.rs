//! The bounded log buffer coupling the application and lifeguard cores.
//!
//! LBA reserves a region of the shared last-level cache (64 KB–1 MB) as a
//! circular record buffer. The producer (application core) stalls when the
//! buffer is full; the consumer (lifeguard core) stalls when it is empty
//! (paper §3). This module provides the functional buffer; the cycle-level
//! consequences of the stalls are modelled by `igm-timing`.

use crate::record::compressed_size;
use igm_isa::TraceEntry;
use std::collections::VecDeque;

/// Default buffer capacity used throughout the paper's evaluation (Table 2).
pub const DEFAULT_CAPACITY_BYTES: u32 = 64 * 1024;

/// A bounded FIFO of log records with byte-level occupancy accounting.
///
/// # Example
///
/// ```
/// use igm_lba::LogBuffer;
/// use igm_isa::{OpClass, Reg, TraceEntry};
///
/// let mut buf = LogBuffer::new(4); // 4 bytes => 4 instruction records
/// let rec = TraceEntry::op(0x1000, OpClass::ImmToReg { rd: Reg::Eax });
/// assert!(buf.push(rec));
/// assert_eq!(buf.pop(), Some(rec));
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LogBuffer {
    capacity_bytes: u32,
    used_bytes: u32,
    records: VecDeque<TraceEntry>,
    /// Total records ever pushed.
    pushed: u64,
    /// Pushes rejected because the buffer was full.
    rejected: u64,
    /// High-water mark of byte occupancy.
    peak_bytes: u32,
}

impl LogBuffer {
    /// Creates a buffer holding up to `capacity_bytes` of compressed records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: u32) -> LogBuffer {
        assert!(capacity_bytes > 0, "log buffer capacity must be positive");
        LogBuffer {
            capacity_bytes,
            used_bytes: 0,
            records: VecDeque::new(),
            pushed: 0,
            rejected: 0,
            peak_bytes: 0,
        }
    }

    /// Creates the 64 KB buffer of the paper's evaluation setup.
    pub fn isca08() -> LogBuffer {
        LogBuffer::new(DEFAULT_CAPACITY_BYTES)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u32 {
        self.used_bytes
    }

    /// Whether `entry` currently fits.
    pub fn has_room(&self, entry: &TraceEntry) -> bool {
        self.used_bytes + compressed_size(entry) <= self.capacity_bytes
    }

    /// Appends a record; returns `false` (and counts a rejection) when full.
    pub fn push(&mut self, entry: TraceEntry) -> bool {
        let sz = compressed_size(&entry);
        if self.used_bytes + sz > self.capacity_bytes {
            self.rejected += 1;
            return false;
        }
        self.used_bytes += sz;
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        self.records.push_back(entry);
        self.pushed += 1;
        true
    }

    /// Removes and returns the oldest record.
    pub fn pop(&mut self) -> Option<TraceEntry> {
        let entry = self.records.pop_front()?;
        self.used_bytes -= compressed_size(&entry);
        Some(entry)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever accepted.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Pushes rejected because the buffer was full.
    pub fn total_rejected(&self) -> u64 {
        self.rejected
    }

    /// High-water mark of byte occupancy.
    pub fn peak_bytes(&self) -> u32 {
        self.peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{Annotation, OpClass, Reg};

    fn instr() -> TraceEntry {
        TraceEntry::op(0x1000, OpClass::ImmToReg { rd: Reg::Eax })
    }

    fn annot() -> TraceEntry {
        TraceEntry::annot(0x1000, Annotation::Free { base: 0x9000 })
    }

    #[test]
    fn fifo_order_preserved() {
        let mut b = LogBuffer::new(1024);
        let e1 = TraceEntry::op(1, OpClass::ImmToReg { rd: Reg::Eax });
        let e2 = TraceEntry::op(2, OpClass::ImmToReg { rd: Reg::Ecx });
        b.push(e1);
        b.push(e2);
        assert_eq!(b.pop(), Some(e1));
        assert_eq!(b.pop(), Some(e2));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn byte_accounting_and_backpressure() {
        let mut b = LogBuffer::new(10);
        assert!(b.push(annot())); // 9 bytes
        assert!(b.push(instr())); // 1 byte -> exactly full
        assert_eq!(b.used_bytes(), 10);
        assert!(!b.push(instr()));
        assert_eq!(b.total_rejected(), 1);
        b.pop();
        assert_eq!(b.used_bytes(), 1);
        assert!(b.push(instr()));
        assert_eq!(b.total_pushed(), 3);
        assert_eq!(b.peak_bytes(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LogBuffer::new(0);
    }

    #[test]
    fn isca08_capacity() {
        assert_eq!(LogBuffer::isca08().capacity_bytes(), 64 * 1024);
    }
}
