//! Quickstart: monitor a tiny program with TaintCheck under the fully
//! accelerated pipeline and catch a control-flow hijack.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use igm::accel::{AccelConfig, ItConfig};
use igm::isa::asm::{Addressing, ProgramBuilder};
use igm::isa::{Annotation, Machine, MemSize, Reg};
use igm::lifeguards::TaintCheck;
use igm::sim::Monitor;

fn main() {
    // A little program: read 4 bytes of untrusted input, load them into a
    // register, and jump through that register.
    let mut p = ProgramBuilder::new(0x0804_8000);
    p.annot(Annotation::ReadInput { base: 0x0900_0000, len: 4 });
    p.load(Reg::Eax, Addressing::abs(0x0900_0000, MemSize::B4));
    p.jmp_ind_reg(Reg::Eax);
    p.halt();

    // Execute it: the "attacker" supplies the jump target.
    let mut machine = Machine::new(p.build());
    machine.feed_input(&0x0804_800cu32.to_le_bytes()); // points at the halt
    machine.run().expect("the supplied target is inside the program");

    // Monitor the trace with TaintCheck, all accelerators on.
    let accel = AccelConfig::full(ItConfig::taint_style());
    let mut monitor = Monitor::new(TaintCheck::new(&accel), &accel);
    monitor.observe_all(machine.trace().iter().copied());

    println!("instructions retired : {}", machine.retired());
    let stats = monitor.dispatch_stats();
    println!("events extracted     : {}", stats.events_extracted);
    println!("delivered to handlers: {}", stats.delivered);
    println!();
    for v in monitor.violations() {
        println!("VIOLATION: {v}");
    }
    assert_eq!(monitor.violations().len(), 1, "the tainted jump must be caught");
    println!("\nTaintCheck caught the tainted indirect jump — before it executed.");
}
