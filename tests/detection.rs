//! End-to-end bug detection: planted bugs must be caught under *every*
//! accelerator configuration — acceleration may drop redundant work but
//! never a true violation (the framework's soundness contract).

use igm::accel::{AccelConfig, ItConfig};
use igm::isa::asm::{Addressing, Cond, ProgramBuilder};
use igm::isa::{Annotation, Machine, MemSize, Reg, TraceEntry};
use igm::lifeguards::{
    AddrCheck, Lifeguard, LockSet, MemCheck, TaintCheck, TaintCheckDetailed, Violation,
};
use igm::sim::Monitor;
use igm::workload::MtBenchmark;

const STACK_TOP: u32 = 0xbfff_f000;

fn all_configs() -> Vec<AccelConfig> {
    vec![
        AccelConfig::baseline(),
        AccelConfig::lma(),
        AccelConfig::lma_if(),
        AccelConfig::lma_it(ItConfig::taint_style()),
        AccelConfig::full(ItConfig::taint_style()),
    ]
}

fn run_machine(build: impl Fn(&mut ProgramBuilder)) -> Vec<TraceEntry> {
    let mut p = ProgramBuilder::new(0x0804_8000);
    p.mov_ri(Reg::Esp, STACK_TOP);
    build(&mut p);
    p.halt();
    let mut m = Machine::new(p.build());
    m.feed_input(&[0x11; 64]);
    let _ = m.run(); // exploit traces may end in a wild jump
    m.take_trace()
}

#[test]
fn tainted_jump_detected_under_every_config() {
    let trace = run_machine(|p| {
        p.annot(Annotation::ReadInput { base: 0x0900_0000, len: 4 });
        p.load(Reg::Eax, Addressing::abs(0x0900_0000, MemSize::B4));
        p.jmp_ind_reg(Reg::Eax);
    });
    for accel in all_configs() {
        let mut mon = Monitor::new(TaintCheck::new(&accel), &accel);
        mon.observe_all(trace.iter().copied());
        assert_eq!(mon.violations().len(), 1, "config {}", accel.label());
        assert!(matches!(mon.violations()[0], Violation::TaintedUse { .. }));
    }
}

#[test]
fn taint_through_copy_chain_survives_acceleration() {
    // Input -> register -> memory -> register -> stored -> ret slot:
    // the inheritance chain crosses several IT states before the sink.
    let trace = run_machine(|p| {
        p.annot(Annotation::ReadInput { base: 0x0900_0000, len: 8 });
        p.load(Reg::Ecx, Addressing::abs(0x0900_0000, MemSize::B4));
        p.mov_rr(Reg::Edx, Reg::Ecx);
        p.store(Addressing::abs(0x0900_0100, MemSize::B4), Reg::Edx);
        p.load(Reg::Ebx, Addressing::abs(0x0900_0100, MemSize::B4));
        p.push(Reg::Ebx);
        p.ret(); // returns through the tainted stack slot
    });
    for accel in all_configs() {
        let mut mon = Monitor::new(TaintCheck::new(&accel), &accel);
        mon.observe_all(trace.iter().copied());
        assert!(
            mon.violations().iter().any(|v| matches!(v, Violation::TaintedUse { .. })),
            "config {} missed the chained taint",
            accel.label()
        );
    }
}

#[test]
fn detailed_taint_trail_consistent_across_configs() {
    let trace = run_machine(|p| {
        p.annot(Annotation::ReadInput { base: 0x0900_0000, len: 4 });
        p.load(Reg::Eax, Addressing::abs(0x0900_0000, MemSize::B4));
        p.store(Addressing::abs(0x0900_0200, MemSize::B4), Reg::Eax);
        p.annot(Annotation::Syscall {
            arg_reg: None,
            arg_mem: Some(igm::isa::MemRef::word(0x0900_0200)),
        });
    });
    let mut trails = Vec::new();
    for accel in all_configs() {
        let mut mon = Monitor::new(TaintCheckDetailed::new(&accel), &accel);
        mon.observe_all(trace.iter().copied());
        assert_eq!(mon.violations().len(), 1, "config {}", accel.label());
        trails.push(mon.lifeguard().taint_trail(0x0900_0200, 8));
    }
    // The reconstructed trail is a metadata observable: identical verdict
    // endpoints regardless of acceleration.
    for t in &trails {
        assert_eq!(t.last().map(|(a, _)| *a), Some(0x0900_0000));
    }
}

#[test]
fn memory_bugs_detected_under_every_config() {
    let trace = run_machine(|p| {
        let out = p.label();
        p.annot(Annotation::Malloc { base: 0x0900_0000, size: 32 });
        p.store_imm(Addressing::abs(0x0900_0000 + 32, MemSize::B4), 1); // OOB
        p.annot(Annotation::Free { base: 0x0900_0000 });
        p.load(Reg::Eax, Addressing::abs(0x0900_0000, MemSize::B4)); // UAF
        p.annot(Annotation::Free { base: 0x0900_0000 }); // double free
        p.annot(Annotation::Malloc { base: 0x0900_1000, size: 16 });
        p.load(Reg::Ecx, Addressing::abs(0x0900_1000, MemSize::B4));
        p.cmp_ri(Reg::Ecx, 0);
        p.jcc(Cond::Eq, out); // uninit branch input
        p.bind(out);
    });
    for accel in all_configs() {
        let mut ac = Monitor::new(AddrCheck::new(&accel), &accel);
        ac.lifeguard_mut().premark_region(STACK_TOP - 0x1000, 0x1000);
        ac.observe_all(trace.iter().copied());
        let kinds: Vec<_> = ac.violations().iter().collect();
        assert!(
            kinds.iter().any(|v| matches!(v, Violation::UnallocatedAccess { is_write: true, .. })),
            "config {}: OOB store missed",
            accel.label()
        );
        assert!(kinds.iter().any(|v| matches!(v, Violation::DoubleFree { .. })));

        let mut mc = Monitor::new(MemCheck::new(&accel), &accel);
        mc.lifeguard_mut().premark_region(STACK_TOP - 0x1000, 0x1000);
        mc.observe_all(trace.iter().copied());
        assert!(
            mc.violations().iter().any(|v| matches!(v, Violation::UninitUse { .. })),
            "config {}: uninit branch missed",
            accel.label()
        );
    }
}

#[test]
fn data_races_detected_and_clean_runs_silent_under_every_config() {
    let n = 120_000;
    let racy: Vec<TraceEntry> = MtBenchmark::Zchaff.trace_with_race(n).collect();
    let clean: Vec<TraceEntry> = MtBenchmark::Zchaff.trace(n).collect();
    let mut counts = Vec::new();
    for accel in all_configs() {
        let mut mon = Monitor::new(LockSet::new(&accel), &accel);
        mon.observe_all(clean.iter().copied());
        assert!(mon.violations().is_empty(), "config {}: false race", accel.label());

        let mut mon = Monitor::new(LockSet::new(&accel), &accel);
        mon.observe_all(racy.iter().copied());
        assert!(!mon.violations().is_empty(), "config {}: race missed", accel.label());
        counts.push(mon.violations().len());
    }
    // Acceleration must not change which races are found.
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "race counts differ: {counts:?}");
}

#[test]
fn verdicts_identical_across_configs_for_taintcheck() {
    // A broader equivalence run: the full violation lists (pc, kind) must
    // match between baseline and fully accelerated configurations.
    let trace = run_machine(|p| {
        p.annot(Annotation::ReadInput { base: 0x0900_0000, len: 16 });
        p.mov_ri(Reg::Esi, 0x0900_0000);
        p.mov_ri(Reg::Edi, 0x0900_0100);
        for _ in 0..4 {
            p.movs(MemSize::B4);
        }
        p.load(Reg::Eax, Addressing::abs(0x0900_0104, MemSize::B4));
        p.jmp_ind_reg(Reg::Eax);
    });
    // The *source description* legitimately differs: the baseline names
    // the tainted register, while IT's lazy inheritance names the memory
    // location the register inherited from (strictly more informative).
    // The violation identity is (pc, sink).
    let identity = |v: &Violation| match v {
        Violation::TaintedUse { pc, sink, .. } => (*pc, *sink),
        other => panic!("unexpected violation {other}"),
    };
    let mut all: Vec<Vec<_>> = Vec::new();
    for accel in all_configs() {
        let mut mon = Monitor::new(TaintCheck::new(&accel), &accel);
        mon.observe_all(trace.iter().copied());
        all.push(mon.lifeguard_mut().take_violations().iter().map(identity).collect());
    }
    for other in &all[1..] {
        assert_eq!(&all[0], other);
    }
}
