//! The event-dispatch pipeline: record extraction → Inheritance Tracking →
//! ETCT gating → Idempotent Filter → handler delivery.
//!
//! This is the consumer-side hardware of the paper's Figure 3: the
//! `fetch & decompress` and `log record dispatch` components, extended with
//! the IT and IF units proposed by the paper (dashed boxes).
//!
//! Stage order per record:
//!
//! 1. **Extraction** — the record expands into its events
//!    ([`igm_lba::extract_events`]).
//! 2. **Early gating** — check and annotation events whose type the
//!    lifeguard never registered are dropped for free (`nlba` skips them).
//!    Propagation events always enter IT (its table must observe every
//!    data-flow instruction to stay coherent).
//! 3. **Inheritance Tracking** — absorbs/transforms propagation events and
//!    register-source checks; annotation records flush the table first
//!    (their handlers may rewrite arbitrary metadata, invalidating lazy
//!    inheritance).
//! 4. **ETCT gating** — IT output events of unregistered types are dropped.
//! 5. **Idempotent Filter** — invalidations and redundant-check filtering
//!    per the lifeguard's ETCT configuration.
//! 6. **Delivery** — everything surviving reaches the lifeguard's handler.

use crate::config::AccelConfig;
use crate::filter::{IdempotentFilter, IfOutcome, IfStats};
use crate::it::{InheritanceTracker, ItStats};
use igm_isa::TraceEntry;
use igm_lba::{
    extract_batch, extract_batch_entries, sweep_batch, DeliveredEvent, Etct, EtctEntry, Event,
    EventBuf, EventSink, EventType, TraceBatch, NUM_EVENT_TYPES,
};

/// Aggregate pipeline counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchStats {
    /// Log records dispatched.
    pub records: u64,
    /// Events produced by extraction.
    pub events_extracted: u64,
    /// Events dropped because their type is unregistered.
    pub unregistered_dropped: u64,
    /// Events discarded by the Idempotent Filter.
    pub if_filtered: u64,
    /// Events delivered to lifeguard handlers.
    pub delivered: u64,
    /// Delivered events broken down by [`igm_lba::EventType`] index.
    pub delivered_by_type: [u64; NUM_EVENT_TYPES],
}

impl Default for DispatchStats {
    fn default() -> DispatchStats {
        DispatchStats {
            records: 0,
            events_extracted: 0,
            unregistered_dropped: 0,
            if_filtered: 0,
            delivered: 0,
            delivered_by_type: [0; NUM_EVENT_TYPES],
        }
    }
}

/// The dispatch pipeline with its optional accelerator units.
///
/// # Example
///
/// ```
/// use igm_core::{AccelConfig, DispatchPipeline, ItConfig};
/// use igm_lba::{Etct, EventType, IfEventConfig};
/// use igm_isa::{OpClass, MemRef, Reg, TraceEntry};
///
/// let mut etct = Etct::new();
/// etct.register_plain(EventType::MemToReg);
/// etct.register_plain(EventType::MemToMem);
/// etct.register_plain(EventType::RegToMem);
/// etct.register_plain(EventType::ImmToMem);
///
/// let mut p = DispatchPipeline::new(etct, &AccelConfig::lma_it(ItConfig::taint_style()));
/// // A load is absorbed by IT: nothing reaches the handler.
/// let load = TraceEntry::op(0x1000, OpClass::MemToReg {
///     src: MemRef::word(0x9000), rd: Reg::Eax });
/// let mut seen = Vec::new();
/// p.dispatch(&load, |d| seen.push(d));
/// assert!(seen.is_empty());
/// assert_eq!(p.stats().records, 1);
/// ```
///
/// The pipeline is `Clone + Send`: the streaming runtime (`igm-runtime`)
/// instantiates one pipeline per lifeguard shard and moves it onto a worker
/// thread; cloning snapshots the accelerator state for epoch-parallel
/// checking.
#[derive(Debug, Clone)]
pub struct DispatchPipeline {
    etct: Etct,
    it: Option<InheritanceTracker>,
    filter: Option<IdempotentFilter>,
    stats: DispatchStats,
    raw: EventBuf,
    post_it: Vec<DeliveredEvent>,
    single: EventBuf,
}

impl DispatchPipeline {
    /// Builds a pipeline for a lifeguard's ETCT under `cfg`.
    pub fn new(etct: Etct, cfg: &AccelConfig) -> DispatchPipeline {
        DispatchPipeline {
            etct,
            it: cfg.it.map(InheritanceTracker::new),
            filter: cfg.if_geometry.map(IdempotentFilter::new),
            stats: DispatchStats::default(),
            raw: EventBuf::with_capacity(8, 1),
            post_it: Vec::with_capacity(8),
            single: EventBuf::with_capacity(8, 1),
        }
    }

    /// The pipeline's ETCT.
    pub fn etct(&self) -> &Etct {
        &self.etct
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &DispatchStats {
        &self.stats
    }

    /// Inheritance Tracking counters, when the unit is present.
    pub fn it_stats(&self) -> Option<&ItStats> {
        self.it.as_ref().map(|t| t.stats())
    }

    /// Idempotent Filter counters, when the unit is present.
    pub fn if_stats(&self) -> Option<&IfStats> {
        self.filter.as_ref().map(|f| f.stats())
    }

    /// Dispatches a whole columnar [`TraceBatch`] through
    /// extraction → IT → ETCT gating → IF in one call, appending every
    /// surviving event to `out` (cleared first; one closed [`EventBuf`]
    /// record per trace entry).
    ///
    /// This is the hot path: extraction sweeps the batch's columns
    /// ([`igm_lba::extract_batch`]) and all staging buffers — the
    /// extraction arena, the post-IT buffer and `out` itself — are reused
    /// across batches, so steady-state dispatch performs no per-record heap
    /// allocation.
    pub fn dispatch_batch(&mut self, batch: &TraceBatch, out: &mut EventBuf) {
        out.clear();
        self.stats.records += batch.len() as u64;
        if self.it.is_some() {
            // Inheritance Tracking consumes the full raw event stream
            // record-at-a-time (it may absorb, transform or flush), so the
            // IT configurations extract into the staging arena first.
            let mut raw = std::mem::take(&mut self.raw);
            extract_batch(batch, &mut raw);
            self.stats.events_extracted += raw.len() as u64;
            self.gate_into(&raw, out);
            self.raw = raw;
        } else {
            // Fused columnar path: ETCT gating (and the IF) run *inside*
            // the column sweep. Every emission site knows its event type
            // statically, so the gate is one precomputed-row test per
            // site — no per-event type re-derivation, no staging arena,
            // and events of unregistered types are dropped before their
            // payloads are even constructed.
            let mut sink = GateSink {
                etct: &self.etct,
                filter: self.filter.as_mut(),
                stats: &mut self.stats,
                out,
            };
            sweep_batch(batch, &mut sink);
        }
    }

    /// Dispatches a chunk still held as an array of structs — the
    /// compatibility twin of [`DispatchPipeline::dispatch_batch`] for
    /// callers without a [`TraceBatch`] at hand (and the AoS baseline the
    /// throughput bench measures the columnar path against). Extraction
    /// runs the per-record [`igm_lba::extract_batch_entries`] path; gating
    /// and delivery are shared with the columnar path, so the two are
    /// event-for-event and counter-for-counter identical.
    pub fn dispatch_batch_entries(&mut self, entries: &[TraceEntry], out: &mut EventBuf) {
        out.clear();
        self.stats.records += entries.len() as u64;
        let mut raw = std::mem::take(&mut self.raw);
        extract_batch_entries(entries, &mut raw);
        self.stats.events_extracted += raw.len() as u64;
        self.gate_into(&raw, out);
        self.raw = raw;
    }

    /// The shared post-extraction stages: IT (when present), then ETCT
    /// gating and the Idempotent Filter, record boundaries preserved.
    fn gate_into(&mut self, raw: &EventBuf, out: &mut EventBuf) {
        if self.it.is_some() {
            let mut post_it = std::mem::take(&mut self.post_it);
            for rec in raw.record_slices() {
                post_it.clear();
                for dev in rec.iter().copied() {
                    match (&mut self.it, &dev.event) {
                        (Some(it), Event::Annot(_)) => {
                            if self.etct.is_registered(dev.event.event_type()) {
                                // The annotation handler may rewrite metadata
                                // arbitrarily: materialize all lazy inheritance
                                // before it runs.
                                it.flush_all(dev.pc, &mut post_it);
                            }
                            post_it.push(dev);
                        }
                        (Some(it), Event::Prop(_)) => it.process(dev.pc, dev.event, &mut post_it),
                        (Some(it), Event::Check { .. }) => {
                            // Register-source checks resolve through the IT
                            // table, but only if the lifeguard cares about
                            // this check kind.
                            if self.etct.is_registered(dev.event.event_type()) {
                                it.process(dev.pc, dev.event, &mut post_it);
                            } else {
                                self.stats.unregistered_dropped += 1;
                            }
                        }
                        _ => post_it.push(dev),
                    }
                }
                self.deliver(&post_it, out);
                out.end_record();
            }
            self.post_it = post_it;
        } else {
            // Without IT the post-IT stage is the identity: gate straight
            // off the extraction arena, no per-event copy through the
            // staging buffer.
            for rec in raw.record_slices() {
                self.deliver(rec, out);
                out.end_record();
            }
        }
    }

    /// ETCT gating + IF + delivery accounting for one record's events.
    /// Extraction emits events of one type in runs (all of a record's
    /// address checks, then its accesses, then its propagation event), so
    /// the ETCT row is looked up once per run rather than once per event.
    fn deliver(&mut self, evs: &[DeliveredEvent], out: &mut EventBuf) {
        let mut run: Option<(EventType, EtctEntry)> = None;
        for dev in evs.iter().copied() {
            let et = dev.event.event_type();
            let row = match run {
                Some((run_et, row)) if run_et == et => row,
                _ => {
                    let row = *self.etct.entry(et);
                    run = Some((et, row));
                    row
                }
            };
            if !row.registered {
                self.stats.unregistered_dropped += 1;
                continue;
            }
            if let Some(f) = &mut self.filter {
                if f.process(dev.pc, &dev.event, &row.if_cfg) == IfOutcome::Filtered {
                    self.stats.if_filtered += 1;
                    continue;
                }
            }
            self.stats.delivered += 1;
            self.stats.delivered_by_type[et.index()] += 1;
            out.push(dev);
        }
    }

    /// Dispatches one log record, invoking `deliver` for every event that
    /// survives the accelerators. Thin wrapper over the
    /// [`DispatchPipeline::dispatch_batch_entries`] for record-at-a-time
    /// callers (the co-simulator, tests); streaming consumers should
    /// dispatch whole chunks instead.
    pub fn dispatch(&mut self, entry: &TraceEntry, mut deliver: impl FnMut(DeliveredEvent)) {
        let mut single = std::mem::take(&mut self.single);
        self.dispatch_batch_entries(std::slice::from_ref(entry), &mut single);
        for dev in single.events().iter().copied() {
            deliver(dev);
        }
        self.single = single;
    }
}

/// The fused ETCT/IF gate as a column-sweep sink (the no-IT hot path of
/// [`DispatchPipeline::dispatch_batch`]): gating and delivery accounting
/// happen at the emission sites of [`igm_lba::sweep_batch`], where the
/// event type is a compile-time constant — the ETCT row lookup is a single
/// indexed load per site and unregistered events are never constructed.
struct GateSink<'a> {
    etct: &'a Etct,
    filter: Option<&'a mut IdempotentFilter>,
    stats: &'a mut DispatchStats,
    out: &'a mut EventBuf,
}

impl EventSink for GateSink<'_> {
    #[inline(always)]
    fn event(&mut self, pc: u32, et: EventType, make: impl FnOnce() -> Event) {
        self.stats.events_extracted += 1;
        let row = self.etct.entry(et);
        if !row.registered {
            self.stats.unregistered_dropped += 1;
            return;
        }
        let ev = make();
        if let Some(f) = self.filter.as_deref_mut() {
            if f.process(pc, &ev, &row.if_cfg) == IfOutcome::Filtered {
                self.stats.if_filtered += 1;
                return;
            }
        }
        self.stats.delivered += 1;
        self.stats.delivered_by_type[et.index()] += 1;
        self.out.push(DeliveredEvent::new(pc, ev));
    }

    #[inline(always)]
    fn end_record(&mut self) {
        self.out.end_record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::it::ItConfig;
    use igm_isa::{Annotation, MemRef, OpClass, Reg};
    use igm_lba::{EventType, IfEventConfig};

    /// Test-local stand-in for the removed per-record `dispatch_collect`:
    /// one record through the batch path, delivered events collected.
    fn collect(p: &mut DispatchPipeline, e: &TraceEntry) -> Vec<DeliveredEvent> {
        let mut out = Vec::new();
        p.dispatch(e, |d| out.push(d));
        out
    }

    /// The streaming runtime moves pipelines and accelerator units across
    /// worker threads and clones them per shard; keep that statically true.
    #[test]
    fn pipeline_and_accelerators_are_send_and_clone() {
        fn assert_send_clone<T: Send + Clone>() {}
        assert_send_clone::<DispatchPipeline>();
        assert_send_clone::<InheritanceTracker>();
        assert_send_clone::<IdempotentFilter>();
        assert_send_clone::<crate::MetadataTlb>();
    }

    #[test]
    fn cloned_pipeline_diverges_independently() {
        let mut p = DispatchPipeline::new(addrcheck_etct(), &AccelConfig::lma_if());
        let load =
            TraceEntry::op(0x10, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax });
        collect(&mut p, &load);
        let mut q = p.clone();
        assert_eq!(q.stats().records, 1);
        // The clone's IF inherits the warm entry (the load is filtered)...
        assert_eq!(collect(&mut q, &load).len(), 0);
        // ...but the original's counters are unaffected by the clone's run.
        assert_eq!(p.stats().records, 1);
        assert_eq!(q.stats().records, 2);
    }

    fn taint_etct() -> Etct {
        let mut etct = Etct::new();
        etct.register_all([
            EventType::ImmToReg,
            EventType::ImmToMem,
            EventType::RegToReg,
            EventType::RegToMem,
            EventType::MemToReg,
            EventType::MemToMem,
            EventType::DestRegOpReg,
            EventType::DestRegOpMem,
            EventType::DestMemOpReg,
            EventType::Other,
            EventType::CheckJumpTarget,
            EventType::Malloc,
            EventType::ReadInput,
        ]);
        etct
    }

    fn addrcheck_etct() -> Etct {
        let mut etct = Etct::new();
        etct.register(EventType::MemRead, IfEventConfig::cacheable_addr(0));
        etct.register(EventType::MemWrite, IfEventConfig::cacheable_addr(0));
        etct.register(EventType::Malloc, IfEventConfig::invalidates_all());
        etct.register(EventType::Free, IfEventConfig::invalidates_all());
        etct
    }

    #[test]
    fn baseline_delivers_registered_events_untouched() {
        let mut p = DispatchPipeline::new(taint_etct(), &AccelConfig::baseline());
        let load =
            TraceEntry::op(0x10, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax });
        let out = collect(&mut p, &load);
        // MemRead is unregistered for TaintCheck; the propagation event is
        // delivered.
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].event,
            Event::Prop(OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax })
        );
        assert_eq!(p.stats().unregistered_dropped, 1);
    }

    #[test]
    fn it_absorbs_register_traffic_end_to_end() {
        let mut p =
            DispatchPipeline::new(taint_etct(), &AccelConfig::lma_it(ItConfig::taint_style()));
        let a = MemRef::word(0xa0);
        let d = MemRef::word(0xd0);
        let seq = [
            TraceEntry::op(1, OpClass::MemToReg { src: a, rd: Reg::Eax }),
            TraceEntry::op(2, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }),
            TraceEntry::op(3, OpClass::RegToMem { rs: Reg::Ecx, dst: d }),
        ];
        let mut out = Vec::new();
        for e in &seq {
            out.extend(collect(&mut p, e));
        }
        // Only the final store reaches software, transformed to mem_to_mem.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].event, Event::Prop(OpClass::MemToMem { src: a, dst: d }));
    }

    #[test]
    fn annotations_flush_it_before_delivery() {
        let mut p =
            DispatchPipeline::new(taint_etct(), &AccelConfig::lma_it(ItConfig::taint_style()));
        let a = MemRef::word(0xa0);
        collect(&mut p, &TraceEntry::op(1, OpClass::MemToReg { src: a, rd: Reg::Eax }));
        let out =
            collect(&mut p, &TraceEntry::annot(2, Annotation::Malloc { base: 0x9000, size: 64 }));
        // Flush events (one per register) precede the annotation.
        assert_eq!(out.len(), 9);
        assert!(matches!(out[8].event, Event::Annot(Annotation::Malloc { .. })));
        assert!(matches!(out[0].event, Event::Prop(_)));
    }

    #[test]
    fn unregistered_annotation_does_not_flush() {
        let mut p =
            DispatchPipeline::new(taint_etct(), &AccelConfig::lma_it(ItConfig::taint_style()));
        let a = MemRef::word(0xa0);
        collect(&mut p, &TraceEntry::op(1, OpClass::MemToReg { src: a, rd: Reg::Eax }));
        // ThreadSwitch is unregistered for TaintCheck.
        let out = collect(&mut p, &TraceEntry::annot(2, Annotation::ThreadSwitch { tid: 1 }));
        assert!(out.is_empty());
    }

    #[test]
    fn if_filters_redundant_accesses_and_invalidates_on_malloc() {
        let mut p = DispatchPipeline::new(addrcheck_etct(), &AccelConfig::lma_if());
        let load =
            TraceEntry::op(0x10, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax });
        assert_eq!(collect(&mut p, &load).len(), 1);
        assert_eq!(collect(&mut p, &load).len(), 0); // filtered
        assert_eq!(p.stats().if_filtered, 1);
        // malloc invalidates; the next access re-checks.
        let m = TraceEntry::annot(0x20, Annotation::Malloc { base: 0x9000, size: 16 });
        assert_eq!(collect(&mut p, &m).len(), 1);
        assert_eq!(collect(&mut p, &load).len(), 1);
    }

    #[test]
    fn check_kind_gating_happens_before_it() {
        // TaintCheck registers jump-target checks but not addr-compute
        // checks; the latter never enter IT.
        let mut p =
            DispatchPipeline::new(taint_etct(), &AccelConfig::lma_it(ItConfig::taint_style()));
        let load = TraceEntry::op(1, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax })
            .with_addr_regs(igm_isa::RegSet::from_regs([Reg::Ebx]));
        let out = collect(&mut p, &load);
        assert!(out.is_empty());
        assert_eq!(p.it_stats().unwrap().check_in, 0);
    }

    #[test]
    fn dispatch_batch_equals_per_record_dispatch() {
        let a = MemRef::word(0xa0);
        let d = MemRef::word(0xd0);
        let seq = [
            TraceEntry::op(1, OpClass::MemToReg { src: a, rd: Reg::Eax }),
            TraceEntry::op(2, OpClass::RegToReg { rs: Reg::Eax, rd: Reg::Ecx }),
            TraceEntry::annot(3, Annotation::Malloc { base: 0x9000, size: 64 }),
            TraceEntry::op(4, OpClass::RegToMem { rs: Reg::Ecx, dst: d }),
            TraceEntry::op(5, OpClass::MemToReg { src: d, rd: Reg::Edx }),
        ];
        for accel in [
            AccelConfig::baseline(),
            AccelConfig::lma_if(),
            AccelConfig::full(ItConfig::taint_style()),
        ] {
            let mut per_record = DispatchPipeline::new(taint_etct(), &accel);
            let mut reference = Vec::new();
            for e in &seq {
                reference.extend(collect(&mut per_record, e));
            }

            let mut batched = DispatchPipeline::new(taint_etct(), &accel);
            let mut out = EventBuf::new();
            batched.dispatch_batch(&TraceBatch::from_entries(&seq), &mut out);
            assert_eq!(out.events(), &reference[..], "{}", accel.label());
            assert_eq!(out.records(), seq.len());
            assert_eq!(batched.stats(), per_record.stats(), "{}", accel.label());

            // The AoS compatibility twin is the same pipeline in disguise.
            let mut aos = DispatchPipeline::new(taint_etct(), &accel);
            let mut aos_out = EventBuf::new();
            aos.dispatch_batch_entries(&seq, &mut aos_out);
            assert_eq!(aos_out.events(), out.events(), "{}", accel.label());
            assert_eq!(aos.stats(), batched.stats(), "{}", accel.label());
        }
    }

    #[test]
    fn delivered_by_type_accounting() {
        let mut p = DispatchPipeline::new(addrcheck_etct(), &AccelConfig::baseline());
        let load =
            TraceEntry::op(0x10, OpClass::MemToReg { src: MemRef::word(0x9000), rd: Reg::Eax });
        let store =
            TraceEntry::op(0x14, OpClass::RegToMem { rs: Reg::Eax, dst: MemRef::word(0x9004) });
        collect(&mut p, &load);
        collect(&mut p, &store);
        let s = p.stats();
        assert_eq!(s.delivered_by_type[EventType::MemRead.index()], 1);
        assert_eq!(s.delivered_by_type[EventType::MemWrite.index()], 1);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.records, 2);
    }
}
