//! # igm-runtime — the streaming, multi-tenant monitoring runtime
//!
//! The paper's Log-Based Architecture couples *one* monitored application to
//! *one* lifeguard through an in-cache log buffer. This crate scales that
//! design out in software, the way FireGuard-style fabrics scale fine-grained
//! monitoring to many cores: many tenants stream compressed log records
//! through bounded SPSC channels into a shared pool of **lifeguard worker
//! shards**, and a single hot application can additionally be checked
//! **epoch-parallel** across the pool.
//!
//! Three layers:
//!
//! * [`spsc`] — the bounded [`log_channel`]: columnar
//!   [`igm_lba::TraceBatch`] chunks ([`igm_lba::chunks`]), byte-accurate
//!   occupancy from the batch's column lengths using the paper's
//!   compressed-record size model, blocking backpressure with
//!   producer-stall accounting compatible with the timing model's
//!   `producer_stall_cycles` semantics, and drained batch arenas recycled
//!   back to the producer side so steady-state streaming allocates
//!   nothing per chunk.
//! * [`pool`] — the [`MonitorPool`]: N worker threads with a
//!   session-grain work-stealing scheduler. A session's lifeguard, dispatch
//!   pipeline and shadow-memory shard are owned by exactly one worker at a
//!   time; an idle worker steals a runnable session — pending batches and
//!   shadow shard together — from a loaded one, so a hot tenant cannot
//!   starve the sessions queued behind it. The per-session hot path is
//!   batch-grain (`dispatch_batch` → `handle_batch`, statically dispatched
//!   through `AnyLifeguard`) with no per-record allocation. Per-tenant
//!   [`SessionHandle`]s; an aggregated [`ViolationStream`] and pool/session
//!   [`stats`] — which, since the `igm-obs` integration, are views over
//!   the pool's metrics registry ([`MonitorPool::metrics`]): per-lifeguard
//!   dispatch-latency histograms, channel queue-latency/occupancy, steal
//!   and park counters, a lifecycle-event ring, all scrapeable live via
//!   [`MonitorPool::serve_stats`]. A single hot session no longer caps
//!   out at one worker's throughput: when its channel stays
//!   byte-saturated the pool switches it to **intra-session epoch
//!   pipelining** ([`pool::PipelineMode`]) — the owning worker runs an
//!   update-only spine (per-lifeguard check elision,
//!   [`igm_lifeguards::LifeguardKind::spine_elides`]) and streams
//!   snapshot-check epoch jobs through the shared injector, emitting
//!   violations in epoch order so the observable sequence is identical
//!   to sequential checking.
//! * [`epoch`] — [`monitor_epoch_parallel`]: epoch-chunked parallel checking
//!   of one trace against snapshotted shadow state. Every lifeguard runs
//!   parallel: epoch jobs replay the *full* event stream from the epoch
//!   boundary snapshot, so even metadata that does not commute with check
//!   elision (MemCheck's cascade suppression, LockSet's lockset
//!   refinement) evolves exactly as it would sequentially.
//!
//! # Example: two tenants, one pool
//!
//! ```
//! use igm_lifeguards::LifeguardKind;
//! use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
//! use igm_isa::{Annotation, OpClass, MemRef, Reg, TraceEntry};
//!
//! let pool = MonitorPool::new(PoolConfig::with_workers(2));
//! let a = pool.open_session(SessionConfig::new("frontend", LifeguardKind::AddrCheck));
//! let b = pool.open_session(SessionConfig::new("worker", LifeguardKind::TaintCheck));
//!
//! a.send_batch(vec![TraceEntry::annot(0x10, Annotation::Malloc { base: 0x9000, size: 64 })])
//!     .unwrap();
//! b.send_batch(vec![
//!     TraceEntry::annot(0x20, Annotation::ReadInput { base: 0xa000, len: 4 }),
//!     TraceEntry::op(0x24, OpClass::MemToReg { src: MemRef::word(0xa000), rd: Reg::Eax }),
//! ])
//! .unwrap();
//!
//! let ra = a.finish();
//! let rb = b.finish();
//! assert_eq!(ra.records + rb.records, 3);
//! assert_eq!(pool.stats().sessions_closed, 2);
//! pool.shutdown();
//! ```

pub mod epoch;
pub mod pool;
pub mod spsc;
pub mod stats;

pub use epoch::{
    adaptive_next_budget, monitor_epoch_parallel, monitor_epoch_parallel_with, EpochConfig,
    EpochReport, DEFAULT_EPOCH_RECORDS,
};
pub use pool::{
    MonitorPool, PipelineMode, PoolConfig, PoolViolation, SessionConfig, SessionHandle, SessionId,
    ViolationStream,
};
pub use spsc::{log_channel, ChannelStatsSnapshot, LogConsumer, LogProducer, SendError};
pub use stats::{stats_table, PoolStatsSnapshot, SessionReport};
