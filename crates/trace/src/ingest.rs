//! The multiplexed ingest front-end: one OS thread, many tenant sources.
//!
//! The runtime's original ingestion pattern dedicates one blocking
//! producer thread per tenant — faithful to the paper's one-application /
//! one-log-buffer coupling, but wasteful at service scale where most
//! tenants are intermittently idle. [`Ingestor`] replaces it: a single
//! thread round-robins over pluggable [`TraceSource`]s (in-memory
//! generators, recorded trace files, readiness-polled pipes), pulling
//! ready batches and publishing them into per-tenant [`MonitorPool`]
//! sessions with the *non-blocking* [`SessionHandle::try_send_batch`].
//!
//! Backpressure is per source: a batch refused by a full log channel is
//! *staged* on its lane and retried next turn, so one slow tenant defers
//! only itself while the thread keeps servicing the others — the software
//! analogue of per-core log buffers sharing one transport fabric.
//! Fairness is a bounded number of batches per lane per turn plus
//! per-lane accounting ([`LaneStats`]) of how often each source was
//! ready, pending, or deferred by backpressure.

use crate::codec::{TraceError, TraceReader};
use igm_isa::TraceEntry;
use igm_lba::{Chunks, TraceBatch};
use igm_runtime::{MonitorPool, SessionConfig, SessionHandle, SessionReport};
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::time::Duration;

/// What a [`TraceSource`] produced for one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// `out` holds the next batch.
    Ready,
    /// Nothing available right now; poll again later (readiness-style).
    Pending,
    /// The source is exhausted; the lane's session can finish.
    Done,
}

/// A pull-based supplier of record batches, polled by the [`Ingestor`].
///
/// Implementations must not block: a source with nothing available
/// returns [`SourceStatus::Pending`] and the ingest thread moves on.
pub trait TraceSource: Send {
    /// Fills `out` (cleared by the callee) with the next columnar batch.
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError>;
}

/// An in-memory source: any record iterator, chunked at `chunk_bytes`
/// into columnar transport batches ([`igm_lba::chunks`] via the
/// allocation-free [`Chunks::next_into_batch`] — the generator produces
/// batches natively, no `Vec<TraceEntry>` staging).
#[derive(Debug)]
pub struct IterSource<I> {
    chunker: Chunks<I>,
}

impl<I: Iterator<Item = TraceEntry>> IterSource<I> {
    /// Wraps `trace`, batching at `chunk_bytes` compressed-record bytes.
    pub fn new(
        trace: impl IntoIterator<Item = TraceEntry, IntoIter = I>,
        chunk_bytes: u32,
    ) -> Self {
        IterSource { chunker: igm_lba::chunks(trace, chunk_bytes) }
    }
}

impl<I: Iterator<Item = TraceEntry> + Send> TraceSource for IterSource<I> {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        if self.chunker.next_into_batch(out) {
            Ok(SourceStatus::Ready)
        } else {
            Ok(SourceStatus::Done)
        }
    }
}

/// A recorded-trace source: frames stream out of a [`TraceReader`] one
/// chunk per poll, preserving the captured batch structure.
#[derive(Debug)]
pub struct FileSource<R: Read> {
    reader: TraceReader<R>,
}

impl<R: Read> FileSource<R> {
    /// Wraps an open trace stream.
    pub fn new(reader: TraceReader<R>) -> FileSource<R> {
        FileSource { reader }
    }
}

impl FileSource<BufReader<File>> {
    /// Opens the trace file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = File::open(path).map_err(TraceError::Io)?;
        Ok(FileSource { reader: TraceReader::new(BufReader::new(file))? })
    }
}

impl<R: Read + Send> TraceSource for FileSource<R> {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        if self.reader.read_chunk_into_batch(out)? {
            Ok(SourceStatus::Ready)
        } else {
            Ok(SourceStatus::Done)
        }
    }
}

/// Creates an in-process batch pipe of depth `depth`: the sender side
/// lives with an external producer (another thread, a network shim); the
/// [`PipeSource`] side is readiness-polled by the ingest thread and never
/// blocks it.
pub fn batch_pipe(depth: usize) -> (PipeSender, PipeSource) {
    let (tx, rx) = std::sync::mpsc::sync_channel(depth);
    (PipeSender { tx }, PipeSource { rx })
}

/// Producer endpoint of [`batch_pipe`].
#[derive(Debug, Clone)]
pub struct PipeSender {
    tx: SyncSender<TraceBatch>,
}

impl PipeSender {
    /// Queues one batch (anything convertible into a [`TraceBatch`]),
    /// blocking while the pipe is full. Returns the batch if the ingest
    /// side is gone.
    // The "error" is the refused batch arena itself and refusal is the hot
    // backpressure path — boxing it would add an allocation per refusal.
    #[allow(clippy::result_large_err)]
    pub fn send(&self, batch: impl Into<TraceBatch>) -> Result<(), TraceBatch> {
        self.tx.send(batch.into()).map_err(|e| e.0)
    }

    /// Queues one batch without blocking; returns it if the pipe is full
    /// or the ingest side is gone.
    #[allow(clippy::result_large_err)]
    pub fn try_send(&self, batch: impl Into<TraceBatch>) -> Result<(), TraceBatch> {
        self.tx.try_send(batch.into()).map_err(|e| match e {
            TrySendError::Full(b) | TrySendError::Disconnected(b) => b,
        })
    }
}

/// Consumer endpoint of [`batch_pipe`]: a readiness-polled pipe source.
#[derive(Debug)]
pub struct PipeSource {
    rx: Receiver<TraceBatch>,
}

impl TraceSource for PipeSource {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        out.clear();
        match self.rx.try_recv() {
            Ok(batch) => {
                *out = batch;
                Ok(SourceStatus::Ready)
            }
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(SourceStatus::Pending),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Ok(SourceStatus::Done),
        }
    }
}

/// Ingest scheduling parameters.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Batches published per lane per scheduling turn (the fairness
    /// bound: a deep source cannot monopolize the thread).
    pub batches_per_turn: usize,
    /// Sleep applied after a full pass with no progress (every lane
    /// pending or deferred), so an idle front-end does not spin a core.
    pub idle_backoff: Duration,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig { batches_per_turn: 4, idle_backoff: Duration::from_micros(200) }
    }
}

/// Per-lane fairness and backpressure accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneStats {
    /// Batches published into the lane's session.
    pub batches: u64,
    /// Records published.
    pub records: u64,
    /// Sends refused by a full log channel and staged for retry — the
    /// lane's backpressure events (the non-blocking analogue of the SPSC
    /// channel's producer stalls).
    pub deferred_sends: u64,
    /// Polls that found the source not ready.
    pub pending_polls: u64,
    /// Scheduling turns that visited this lane.
    pub turns: u64,
}

struct Lane {
    name: String,
    source: Box<dyn TraceSource>,
    session: Option<SessionHandle>,
    /// A batch refused by backpressure, awaiting retry.
    staged: Option<TraceBatch>,
    /// Pull staging arena: sources decode/chunk their columns straight
    /// into it, then ownership of the filled batch transfers to the log
    /// channel (the transport owns its batches); the lane refills the
    /// arena from the session's recycled spares.
    scratch: TraceBatch,
    source_done: bool,
    /// Source exhausted and channel closed; the worker is draining in the
    /// background and the report is collected after the scheduling loop.
    closed: bool,
    stats: LaneStats,
    error: Option<TraceError>,
}

/// Everything one [`Ingestor::run`] produced.
#[derive(Debug)]
pub struct IngestReport {
    /// Finished session reports, in lane registration order.
    pub sessions: Vec<SessionReport>,
    /// Per-lane fairness/backpressure counters, same order.
    pub lanes: Vec<(String, LaneStats)>,
    /// Source errors (lane name, error), if any; the affected lanes were
    /// finalized early with whatever they had published.
    pub errors: Vec<(String, TraceError)>,
    /// Full scheduling passes over the lane set.
    pub passes: u64,
}

impl IngestReport {
    /// Total records published across all lanes.
    pub fn records(&self) -> u64 {
        self.lanes.iter().map(|(_, s)| s.records).sum()
    }
}

/// The single-threaded multiplexing front-end.
///
/// # Example
///
/// ```
/// use igm_lifeguards::LifeguardKind;
/// use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
/// use igm_trace::{Ingestor, IterSource};
/// use igm_workload::Benchmark;
///
/// let pool = MonitorPool::new(PoolConfig::with_workers(2));
/// let mut ingestor = Ingestor::new(&pool);
/// for bench in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc] {
///     ingestor.add_source(
///         SessionConfig::new(bench.name(), LifeguardKind::AddrCheck)
///             .synthetic()
///             .premark(&bench.profile().premark_regions()),
///         IterSource::new(bench.trace(3_000), 4096),
///     );
/// }
/// let report = ingestor.run(); // one thread drives all three tenants
/// assert_eq!(report.records(), 9_000);
/// assert!(report.sessions.iter().all(|s| s.violations.is_empty()));
/// pool.shutdown();
/// ```
pub struct Ingestor<'p> {
    pool: &'p MonitorPool,
    cfg: IngestConfig,
    lanes: Vec<Lane>,
}

impl<'p> Ingestor<'p> {
    /// A front-end over `pool` with default scheduling parameters.
    pub fn new(pool: &'p MonitorPool) -> Ingestor<'p> {
        Ingestor::with_config(pool, IngestConfig::default())
    }

    /// A front-end with explicit scheduling parameters.
    pub fn with_config(pool: &'p MonitorPool, cfg: IngestConfig) -> Ingestor<'p> {
        assert!(cfg.batches_per_turn > 0, "a lane must be allowed at least one batch per turn");
        Ingestor { pool, cfg, lanes: Vec::new() }
    }

    /// Registers a tenant: opens a session under `cfg` and attaches
    /// `source` to it. Lanes run when [`Ingestor::run`] is called.
    pub fn add_source(&mut self, cfg: SessionConfig, source: impl TraceSource + 'static) {
        let name = cfg.name.clone();
        let session = self.pool.open_session(cfg);
        self.lanes.push(Lane {
            name,
            source: Box::new(source),
            session: Some(session),
            staged: None,
            scratch: TraceBatch::new(),
            source_done: false,
            closed: false,
            stats: LaneStats::default(),
            error: None,
        });
    }

    /// Registered lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Drives every lane to completion on the calling thread and returns
    /// the combined report.
    pub fn run(mut self) -> IngestReport {
        let mut passes = 0u64;
        loop {
            passes += 1;
            let mut open = 0usize;
            let mut progress = false;
            for lane in &mut self.lanes {
                if lane.closed || lane.session.is_none() {
                    continue;
                }
                open += 1;
                progress |= lane.turn(self.cfg.batches_per_turn);
            }
            if open == 0 {
                break;
            }
            if !progress {
                // Every open lane is pending or deferred: yield the core
                // briefly instead of spinning on try_send/try_recv.
                std::thread::sleep(self.cfg.idle_backoff);
            }
        }
        // Collect the reports only now: a lane completing mid-run closed
        // its channel without blocking (the worker drains concurrently),
        // so one finished tenant never stalled the others. All sources are
        // done here, so waiting for the finalizers is all that is left.
        let mut sessions = Vec::new();
        let mut lanes = Vec::new();
        let mut errors = Vec::new();
        for lane in self.lanes {
            if let Some(session) = lane.session {
                sessions.push(session.finish());
            }
            if let Some(err) = lane.error {
                errors.push((lane.name.clone(), err));
            }
            lanes.push((lane.name, lane.stats));
        }
        IngestReport { sessions, lanes, errors, passes }
    }
}

impl Lane {
    /// One scheduling turn: publish up to `budget` batches. Returns
    /// whether anything was published or the lane finished.
    fn turn(&mut self, budget: usize) -> bool {
        self.stats.turns += 1;
        let mut progress = false;
        for _ in 0..budget {
            // Retry a backpressure-deferred batch before pulling new work.
            let batch = match self.staged.take() {
                Some(b) => b,
                None => {
                    if self.source_done {
                        self.close();
                        return true;
                    }
                    match self.source.next_batch(&mut self.scratch) {
                        Ok(SourceStatus::Ready) => {
                            // Hand the filled arena to the channel and
                            // refill the staging slot from the session's
                            // recycled spares.
                            let spare = self
                                .session
                                .as_ref()
                                .map(SessionHandle::spare_batch)
                                .unwrap_or_default();
                            std::mem::replace(&mut self.scratch, spare)
                        }
                        Ok(SourceStatus::Pending) => {
                            self.stats.pending_polls += 1;
                            return progress;
                        }
                        Ok(SourceStatus::Done) => {
                            self.source_done = true;
                            self.close();
                            return true;
                        }
                        Err(e) => {
                            // A corrupt or failing source ends its lane;
                            // the session is finalized with what it got.
                            self.error = Some(e);
                            self.source_done = true;
                            self.close();
                            return true;
                        }
                    }
                }
            };
            if batch.is_empty() {
                continue;
            }
            let records = batch.len() as u64;
            let session = self.session.as_ref().expect("lane is open");
            match session.try_send_batch(batch) {
                Ok(None) => {
                    self.stats.batches += 1;
                    self.stats.records += records;
                    progress = true;
                }
                Ok(Some(refused)) => {
                    // Full channel: stage and let the other lanes run.
                    self.staged = Some(refused);
                    self.stats.deferred_sends += 1;
                    return progress;
                }
                Err(_) => {
                    // Pool shut down under us; drop the lane.
                    self.session = None;
                    return true;
                }
            }
        }
        progress
    }

    /// Closes the lane's log channel without blocking: the owning worker
    /// drains and finalizes in the background while the ingest thread
    /// keeps servicing the other lanes; the report is collected after the
    /// scheduling loop.
    fn close(&mut self) {
        if let Some(session) = self.session.as_mut() {
            session.close();
        }
        self.closed = true;
    }
}
