//! Figure 11: average slowdowns applying the three techniques one by one —
//! the BASE / LMA / LMA+IT / LMA+IT+IF (or LMA+IF) bars for each lifeguard.

use igm_bench::{average_slowdown, run_scale, run_suite};
use igm_core::{AccelConfig, ItConfig};
use igm_lifeguards::LifeguardKind;
use igm_sim::SimConfig;

fn main() {
    let n = run_scale();
    println!("=== Figure 11: applying the techniques one by one (avg slowdowns) ===");
    println!("Records per run: {n}");
    println!(
        "(paper bars: AddrCheck 3.23/1.90/1.02 — MemCheck 7.80/6.05/3.81/3.27 — \
         TaintCheck 3.36/2.29/1.36 — detailed 4.21/2.71/1.51 — LockSet 4.25/3.20/1.40)\n"
    );

    for kind in LifeguardKind::ALL {
        // The per-lifeguard progression: BASE -> LMA -> (+IT if applicable)
        // -> (+IF if applicable); masking deduplicates inapplicable steps.
        let steps = [
            AccelConfig::baseline(),
            AccelConfig::lma(),
            AccelConfig::lma_it(ItConfig::taint_style()),
            AccelConfig::full(ItConfig::taint_style()),
        ];
        print!("{:<32}", kind.name());
        let mut last_label = String::new();
        for accel in steps {
            let cfg = SimConfig::with_accel(kind, accel);
            let label = cfg.accel.label();
            if label == last_label {
                continue; // masked to the same configuration: same bar
            }
            last_label = label.clone();
            let avg = average_slowdown(&run_suite(&cfg, n));
            print!("  {label}={avg:.2}x");
        }
        println!();
    }
}
