//! The wire protocol: message grammar, handshake codec and typed errors.
//!
//! # Message grammar
//!
//! Every message is length-delimited:
//!
//! ```text
//! type     1 byte    message discriminator (below)
//! len      u32 LE    payload bytes
//! payload  len bytes
//! ```
//!
//! | type | name      | direction       | payload |
//! |------|-----------|-----------------|---------|
//! | 1    | `HELLO`   | client → server | magic `IGMN`, version `u32`, trace codec `u32`, tenant session spec (below) |
//! | 2    | `WELCOME` | server → client | initial credit `u64` |
//! | 3    | `CHUNK`   | client → server | *(v3)* 16-byte span prefix, then one `igm-trace` codec **frame, verbatim** (header + payload); *(v2)* the frame alone |
//! | 4    | `CREDIT`  | server → client | additional credit bytes granted, `u64` |
//! | 5    | `FIN`     | client → server | final client lane stats: chunks, records, frame bytes, credit stalls (`u64` each) |
//! | 6    | `FIN_ACK` | server → client | records the server ingested on this lane, `u64` |
//! | 7    | `ERROR`   | server → client | reason string (`u16` len + UTF-8), sent before close on a rejected handshake |
//!
//! The `HELLO` session spec carries everything
//! [`SessionConfig`](igm_runtime::SessionConfig) holds — tenant name,
//! requested [`LifeguardKind`], accelerator configuration, synthetic-mode
//! flag and premarked regions — so a server-side session reproduces the
//! client's local configuration exactly (the loopback-equivalence
//! guarantee rests on this). The trace codec field names the
//! [`igm_trace::Codec`] every subsequent `CHUNK` frame on the lane will
//! carry; a server that does not speak it refuses the handshake with a
//! typed [`NetError::UnsupportedCodec`].
//!
//! # Credit rules
//!
//! Credit is accounted in **chunk payload bytes** (the verbatim frame
//! bytes). `WELCOME` grants the initial window; each `CREDIT` grants more.
//! A client may start sending a chunk whenever its remaining credit is
//! positive — credit may go negative by at most one frame (the classic
//! "overdraft one message" rule), which guarantees progress for frames
//! larger than the window while bounding server-side buffering to the
//! window plus one frame. The server sizes grants from the tenant's log
//! channel *occupancy* (capacity − used bytes): a full channel — a slow
//! lifeguard — stops the grants, throttling the remote producer exactly
//! like the paper's bounded in-cache log buffer throttles the application
//! core.
//!
//! # Span provenance (version 3)
//!
//! Version 3 prepends a fixed [`SPAN_PREFIX_BYTES`]-byte provenance
//! prefix to every `CHUNK` payload:
//!
//! ```text
//! flags   u8      bit 0: this frame is span-sampled
//! pad     3 bytes zero
//! flow    u32 LE  origin span flow (igm-span), 0 when unsampled
//! seq     u64 LE  frame sequence number within the flow
//! ```
//!
//! The sampling decision is made **once, at the origin forwarder**; a
//! sampled frame carries its [`FrameTag`](igm_span::FrameTag) across the
//! wire so the server-side stages (`server_ingest`, `channel_wait`,
//! `dispatch`, …) chain under the same flow/seq as the client-side ones
//! (`client_send`, `credit_stall`) — one causally-joined waterfall per
//! frame. Version negotiation is server-side: a v3 server accepts
//! [`NET_VERSION_COMPAT`]..=[`NET_VERSION`] `HELLO`s and treats a v2
//! lane's chunks as bare frames; a v3 client refused by a v2 server (its
//! `ERROR` names the version) retries the connection once speaking v2,
//! with span stamping disabled. Credit accounts the *whole* chunk payload
//! (prefix included), so both sides' byte ledgers agree under either
//! version.

use igm_core::{AccelConfig, IfGeometry, ItConfig};
use igm_lifeguards::LifeguardKind;
use igm_runtime::SessionConfig;
use igm_span::FrameTag;
use igm_trace::{Codec, TraceError};
use std::fmt;
use std::io::{self, Read};
use std::ops::Range;

/// The four magic bytes opening every `HELLO`.
pub const NET_MAGIC: [u8; 4] = *b"IGMN";

/// Current protocol version (version 2 added trace-codec negotiation to
/// the `HELLO`; version 3 added the span-provenance prefix to `CHUNK`).
pub const NET_VERSION: u32 = 3;

/// Oldest protocol version this side still accepts in a `HELLO`. A v2
/// lane simply carries no span prefix on its chunks; everything else is
/// identical.
pub const NET_VERSION_COMPAT: u32 = 2;

/// Fixed length of the span-provenance prefix opening every v3 `CHUNK`
/// payload (flags `u8`, 3 pad bytes, flow `u32` LE, seq `u64` LE).
pub const SPAN_PREFIX_BYTES: usize = 16;

/// Bytes of message header preceding every payload (`type` u8 + `len`
/// u32 LE).
pub const MSG_HEADER_BYTES: usize = 5;

/// Upper bound accepted for one message payload: the largest legal codec
/// frame plus its frame header and the v3 span prefix. A corrupt length
/// field becomes a typed error instead of an allocation.
pub const MAX_MESSAGE_BYTES: u32 = igm_trace::MAX_PAYLOAD_BYTES
    + igm_trace::FRAME_HEADER_BYTES_V2 as u32
    + SPAN_PREFIX_BYTES as u32;

/// Message type discriminators.
pub mod msg {
    /// Client handshake (magic, version, tenant session spec).
    pub const HELLO: u8 = 1;
    /// Server handshake acceptance, carrying the initial credit grant.
    pub const WELCOME: u8 = 2;
    /// One codec frame, verbatim.
    pub const CHUNK: u8 = 3;
    /// Additional credit bytes granted.
    pub const CREDIT: u8 = 4;
    /// Clean client shutdown, carrying final lane stats.
    pub const FIN: u8 = 5;
    /// Server acknowledgement of FIN, carrying ingested-record count.
    pub const FIN_ACK: u8 = 6;
    /// Handshake rejection reason; the server closes after sending it.
    pub const ERROR: u8 = 7;
}

/// Longest accepted tenant name in a handshake.
pub const MAX_NAME_BYTES: usize = 256;

/// Most premarked regions accepted in a handshake.
pub const MAX_PREMARK_REGIONS: usize = 65_536;

/// Largest M-TLB capacity a handshake may request (the paper sweeps
/// 16–256 entries; this leaves three orders of magnitude of headroom
/// while keeping a hostile value from driving a huge allocation).
pub const MAX_MTLB_ENTRIES: usize = 1 << 20;

/// Largest idempotent-filter entry count a handshake may request.
pub const MAX_IF_ENTRIES: usize = 1 << 20;

/// Errors produced by the protocol layer.
#[derive(Debug)]
pub enum NetError {
    /// Underlying socket failure.
    Io(io::Error),
    /// The peer's handshake does not open with [`NET_MAGIC`].
    BadMagic,
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version the peer announced.
        theirs: u32,
    },
    /// The peer's `HELLO` requested a trace codec this side cannot
    /// decode.
    UnsupportedCodec {
        /// The wire codec identifier the peer announced.
        theirs: u32,
    },
    /// A structurally invalid message (bad length, unknown type,
    /// out-of-range field).
    Malformed(&'static str),
    /// The connection closed at the wrong time (mid-message, before FIN,
    /// during the handshake).
    Disconnected(&'static str),
    /// The server refused the handshake (its `ERROR` reason).
    Rejected(String),
    /// The carried trace frame failed to decode.
    Trace(TraceError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "igm-net i/o error: {e}"),
            NetError::BadMagic => write!(f, "peer is not an igm-net endpoint (bad magic)"),
            NetError::VersionMismatch { theirs } => {
                write!(
                    f,
                    "peer speaks protocol version {theirs} \
                     (this side speaks {NET_VERSION_COMPAT} through {NET_VERSION})"
                )
            }
            NetError::UnsupportedCodec { theirs } => {
                write!(f, "peer requested trace codec {theirs} (this side speaks codecs 1 and 2)")
            }
            NetError::Malformed(reason) => write!(f, "malformed message: {reason}"),
            NetError::Disconnected(when) => write!(f, "connection closed: {when}"),
            NetError::Rejected(reason) => write!(f, "server rejected the session: {reason}"),
            NetError::Trace(e) => write!(f, "carried trace frame invalid: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<TraceError> for NetError {
    fn from(e: TraceError) -> NetError {
        NetError::Trace(e)
    }
}

/// Maps a protocol failure onto the ingest subsystem's lane-containment
/// error type (`offset` is the connection's consumed-byte position, for
/// the report).
pub(crate) fn lane_error(e: NetError, offset: u64) -> TraceError {
    match e {
        NetError::Io(e) => TraceError::Io(e),
        NetError::Trace(e) => e,
        NetError::BadMagic => {
            TraceError::Corrupt { offset, reason: "peer is not an igm-net endpoint" }
        }
        NetError::VersionMismatch { .. } => {
            TraceError::Corrupt { offset, reason: "peer protocol version changed mid-stream" }
        }
        NetError::UnsupportedCodec { .. } => {
            TraceError::Corrupt { offset, reason: "peer requested an unsupported trace codec" }
        }
        NetError::Malformed(reason) | NetError::Disconnected(reason) => {
            TraceError::Corrupt { offset, reason }
        }
        NetError::Rejected(_) => {
            TraceError::Corrupt { offset, reason: "peer rejected the session" }
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Appends one message header.
pub(crate) fn push_header(out: &mut Vec<u8>, ty: u8, len: usize) {
    out.push(ty);
    out.extend_from_slice(&u32::try_from(len).expect("message fits u32 length").to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&u16::try_from(s.len()).expect("string fits u16 length").to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Dense wire code of a [`LifeguardKind`].
fn lifeguard_code(kind: LifeguardKind) -> u8 {
    match kind {
        LifeguardKind::AddrCheck => 0,
        LifeguardKind::MemCheck => 1,
        LifeguardKind::TaintCheck => 2,
        LifeguardKind::TaintCheckDetailed => 3,
        LifeguardKind::LockSet => 4,
    }
}

fn lifeguard_from_code(code: u8) -> Option<LifeguardKind> {
    Some(match code {
        0 => LifeguardKind::AddrCheck,
        1 => LifeguardKind::MemCheck,
        2 => LifeguardKind::TaintCheck,
        3 => LifeguardKind::TaintCheckDetailed,
        4 => LifeguardKind::LockSet,
        _ => return None,
    })
}

/// Encodes a complete `HELLO` message for `session`, under an explicit
/// `version` and wire `codec` identifier (anything but [`NET_VERSION`] /
/// a known [`igm_trace::Codec`] is only useful to exercise the server's
/// checks — which is exactly what the protocol tests do).
pub fn hello_message(version: u32, codec: u32, session: &SessionConfig) -> Vec<u8> {
    let mut body = Vec::with_capacity(64 + session.premark.len() * 8);
    body.extend_from_slice(&NET_MAGIC);
    body.extend_from_slice(&version.to_le_bytes());
    body.extend_from_slice(&codec.to_le_bytes());
    push_str(&mut body, &session.name);
    body.push(lifeguard_code(session.lifeguard));
    body.push(session.synthetic_workload as u8);
    body.push(session.accel.lma as u8);
    body.extend_from_slice(&(session.accel.mtlb_entries as u32).to_le_bytes());
    match &session.accel.it {
        Some(it) => {
            body.push(1);
            body.push(it.nonunary_check as u8);
            body.push(it.clean_rs_do_nothing as u8);
            body.push(it.conflict_detection as u8);
        }
        None => body.push(0),
    }
    match &session.accel.if_geometry {
        Some(geo) => {
            body.push(1);
            body.extend_from_slice(&(geo.entries as u32).to_le_bytes());
            body.extend_from_slice(&(geo.ways as u32).to_le_bytes());
        }
        None => body.push(0),
    }
    body.extend_from_slice(&(session.premark.len() as u32).to_le_bytes());
    for (base, len) in &session.premark {
        body.extend_from_slice(&base.to_le_bytes());
        body.extend_from_slice(&len.to_le_bytes());
    }
    let mut out = Vec::with_capacity(MSG_HEADER_BYTES + body.len());
    push_header(&mut out, msg::HELLO, body.len());
    out.extend_from_slice(&body);
    out
}

/// Appends the v3 chunk span prefix: all-zero when the frame is
/// unsampled, `flags` bit 0 plus the frame's flow/seq when it carries a
/// tag.
pub(crate) fn push_span_prefix(out: &mut Vec<u8>, tag: Option<FrameTag>) {
    match tag {
        Some(tag) => {
            out.extend_from_slice(&[1, 0, 0, 0]);
            out.extend_from_slice(&tag.flow.to_le_bytes());
            out.extend_from_slice(&tag.seq.to_le_bytes());
        }
        None => out.extend_from_slice(&[0u8; SPAN_PREFIX_BYTES]),
    }
}

/// Decodes a v3 chunk span prefix (exactly [`SPAN_PREFIX_BYTES`] bytes).
pub(crate) fn decode_span_prefix(bytes: &[u8]) -> Result<Option<FrameTag>, NetError> {
    debug_assert_eq!(bytes.len(), SPAN_PREFIX_BYTES);
    match bytes[0] {
        0 => Ok(None),
        1 => {
            let flow = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
            if flow == 0 {
                // Flow 0 is the "no flow" placeholder — a sampled frame
                // can never carry it.
                return Err(NetError::Malformed("sampled chunk carries the null span flow"));
            }
            let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
            Ok(Some(FrameTag { flow, seq }))
        }
        _ => Err(NetError::Malformed("span prefix flags out of range")),
    }
}

fn u64_message(ty: u8, v: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(MSG_HEADER_BYTES + 8);
    push_header(&mut out, ty, 8);
    out.extend_from_slice(&v.to_le_bytes());
    out
}

/// Encodes a `WELCOME` carrying the initial credit grant.
pub(crate) fn welcome_message(initial_credit: u64) -> Vec<u8> {
    u64_message(msg::WELCOME, initial_credit)
}

/// Encodes a `CREDIT` grant.
pub(crate) fn credit_message(grant: u64) -> Vec<u8> {
    u64_message(msg::CREDIT, grant)
}

/// Encodes a `FIN_ACK` carrying the server-side ingested-record count.
pub(crate) fn fin_ack_message(records: u64) -> Vec<u8> {
    u64_message(msg::FIN_ACK, records)
}

/// The client-side lane counters a `FIN` carries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FinStats {
    /// Chunk messages sent.
    pub chunks: u64,
    /// Records encoded into them.
    pub records: u64,
    /// Frame (credit-accounted) bytes sent.
    pub frame_bytes: u64,
    /// Times the client stalled waiting for credit.
    pub credit_stalls: u64,
}

/// Encodes a `FIN`.
pub(crate) fn fin_message(stats: &FinStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(MSG_HEADER_BYTES + 32);
    push_header(&mut out, msg::FIN, 32);
    for v in [stats.chunks, stats.records, stats.frame_bytes, stats.credit_stalls] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encodes an `ERROR` (handshake rejection).
pub(crate) fn error_message(reason: &str) -> Vec<u8> {
    let reason = &reason[..reason.len().min(512)];
    let mut out = Vec::with_capacity(MSG_HEADER_BYTES + 2 + reason.len());
    push_header(&mut out, msg::ERROR, 2 + reason.len());
    push_str(&mut out, reason);
    out
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over one message payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(NetError::Malformed("message payload ends inside a field")),
        }
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, NetError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(NetError::Malformed("flag byte out of range")),
        }
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), NetError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(NetError::Malformed("message payload has trailing bytes"))
        }
    }
}

/// Decodes a `HELLO` payload into the tenant's [`SessionConfig`], the
/// negotiated trace [`Codec`] and the negotiated protocol version
/// (anywhere in [`NET_VERSION_COMPAT`]..=[`NET_VERSION`] — the lane then
/// speaks *the client's* version), enforcing magic, version and codec
/// first.
pub fn decode_hello(payload: &[u8]) -> Result<(SessionConfig, Codec, u32), NetError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    if r.take(4)? != NET_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = r.u32()?;
    if !(NET_VERSION_COMPAT..=NET_VERSION).contains(&version) {
        return Err(NetError::VersionMismatch { theirs: version });
    }
    let codec_id = r.u32()?;
    let codec = match Codec::from_wire(codec_id) {
        Some(c) => c,
        None => return Err(NetError::UnsupportedCodec { theirs: codec_id }),
    };
    let name_len = r.u16()? as usize;
    if name_len > MAX_NAME_BYTES {
        return Err(NetError::Malformed("tenant name exceeds the protocol bound"));
    }
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| NetError::Malformed("tenant name is not UTF-8"))?
        .to_owned();
    let lifeguard =
        lifeguard_from_code(r.u8()?).ok_or(NetError::Malformed("lifeguard kind out of range"))?;
    let synthetic = r.bool()?;
    let lma = r.bool()?;
    let mtlb_entries = r.u32()? as usize;
    // The accelerator constructors assert their geometry (positive M-TLB
    // capacity, power-of-two filter shapes) — a hostile handshake must
    // become a typed rejection here, not a panic or an outsized
    // allocation inside the shared pool (lane containment).
    if mtlb_entries == 0 || mtlb_entries > MAX_MTLB_ENTRIES {
        return Err(NetError::Malformed("M-TLB capacity outside the protocol bound"));
    }
    let it = if r.bool()? {
        Some(ItConfig {
            nonunary_check: r.bool()?,
            clean_rs_do_nothing: r.bool()?,
            conflict_detection: r.bool()?,
        })
    } else {
        None
    };
    let if_geometry = if r.bool()? {
        let entries = r.u32()? as usize;
        let ways = r.u32()? as usize;
        if !entries.is_power_of_two() || entries > MAX_IF_ENTRIES {
            return Err(NetError::Malformed(
                "idempotent-filter entries outside the protocol bound",
            ));
        }
        if ways != 0 && (!ways.is_power_of_two() || ways > entries) {
            return Err(NetError::Malformed("idempotent-filter associativity is invalid"));
        }
        Some(IfGeometry { entries, ways })
    } else {
        None
    };
    let regions = r.u32()? as usize;
    if regions > MAX_PREMARK_REGIONS {
        return Err(NetError::Malformed("premark region count exceeds the protocol bound"));
    }
    let mut premark = Vec::with_capacity(regions);
    for _ in 0..regions {
        premark.push((r.u32()?, r.u32()?));
    }
    r.finish()?;
    let mut cfg = SessionConfig::new(name, lifeguard).accel(AccelConfig {
        lma,
        mtlb_entries,
        it,
        if_geometry,
    });
    cfg.synthetic_workload = synthetic;
    cfg.premark = premark;
    Ok((cfg, codec, version))
}

fn decode_u64(payload: &[u8]) -> Result<u64, NetError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let v = r.u64()?;
    r.finish()?;
    Ok(v)
}

/// Decodes a `WELCOME` payload (initial credit).
pub(crate) fn decode_welcome(payload: &[u8]) -> Result<u64, NetError> {
    decode_u64(payload)
}

/// Decodes a `CREDIT` payload (grant bytes).
pub(crate) fn decode_credit(payload: &[u8]) -> Result<u64, NetError> {
    decode_u64(payload)
}

/// Decodes a `FIN_ACK` payload (server-side record count).
pub(crate) fn decode_fin_ack(payload: &[u8]) -> Result<u64, NetError> {
    decode_u64(payload)
}

/// Decodes a `FIN` payload.
pub(crate) fn decode_fin(payload: &[u8]) -> Result<FinStats, NetError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let stats = FinStats {
        chunks: r.u64()?,
        records: r.u64()?,
        frame_bytes: r.u64()?,
        credit_stalls: r.u64()?,
    };
    r.finish()?;
    Ok(stats)
}

/// Decodes an `ERROR` payload (the rejection reason).
pub(crate) fn decode_error(payload: &[u8]) -> Result<String, NetError> {
    let mut r = Reader { bytes: payload, pos: 0 };
    let len = r.u16()? as usize;
    let reason = String::from_utf8_lossy(r.take(len)?).into_owned();
    r.finish()?;
    Ok(reason)
}

// ---------------------------------------------------------------------------
// The shared nonblocking message buffer.
// ---------------------------------------------------------------------------

/// What one [`MsgBuf::fill_from`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fill {
    /// At least one byte arrived.
    Bytes(usize),
    /// Nothing available right now (nonblocking socket).
    WouldBlock,
    /// The peer closed its write side.
    Eof,
}

/// The nonblocking message reassembly buffer both endpoints share: bytes
/// are pulled off the socket as they arrive, complete messages are peeked
/// and consumed in order, and partial messages wait for the next fill —
/// the readiness-polling twin of `igm_trace::ingest`'s `LanePoll`
/// classification, one level down (bytes instead of batches).
#[derive(Debug, Default)]
pub(crate) struct MsgBuf {
    buf: Vec<u8>,
    start: usize,
    /// Stream position of `buf[start]` (consumed bytes), for error
    /// reporting.
    consumed: u64,
}

impl MsgBuf {
    pub fn new() -> MsgBuf {
        MsgBuf::default()
    }

    /// Stream offset of the next unconsumed byte.
    pub fn stream_pos(&self) -> u64 {
        self.consumed
    }

    /// Whether unconsumed (complete or partial) bytes are buffered.
    pub fn has_buffered(&self) -> bool {
        self.start < self.buf.len()
    }

    /// Reads up to `max` bytes from `r` (nonblocking) into the buffer.
    pub fn fill_from(&mut self, r: &mut impl Read, max: usize) -> io::Result<Fill> {
        self.compact();
        let mut tmp = [0u8; 16 * 1024];
        let mut total = 0usize;
        while total < max {
            let want = tmp.len().min(max - total);
            match r.read(&mut tmp[..want]) {
                Ok(0) => return Ok(if total > 0 { Fill::Bytes(total) } else { Fill::Eof }),
                Ok(n) => {
                    self.buf.extend_from_slice(&tmp[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(if total > 0 { Fill::Bytes(total) } else { Fill::WouldBlock })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(Fill::Bytes(total))
    }

    /// If a complete message is buffered, returns its type and payload
    /// range (pass the range to [`MsgBuf::bytes`], then its `end` to
    /// [`MsgBuf::consume`]).
    pub fn peek_message(&self) -> Result<Option<(u8, Range<usize>)>, NetError> {
        let avail = &self.buf[self.start..];
        if avail.len() < MSG_HEADER_BYTES {
            return Ok(None);
        }
        let ty = avail[0];
        let len = u32::from_le_bytes(avail[1..MSG_HEADER_BYTES].try_into().unwrap());
        if len > MAX_MESSAGE_BYTES {
            return Err(NetError::Malformed("message length exceeds the protocol bound"));
        }
        if avail.len() < MSG_HEADER_BYTES + len as usize {
            return Ok(None);
        }
        let at = self.start + MSG_HEADER_BYTES;
        Ok(Some((ty, at..at + len as usize)))
    }

    /// The bytes of a range returned by [`MsgBuf::peek_message`].
    pub fn bytes(&self, range: Range<usize>) -> &[u8] {
        &self.buf[range]
    }

    /// Marks everything up to `end` (a peeked message's payload end) as
    /// consumed.
    pub fn consume(&mut self, end: usize) {
        debug_assert!(end >= self.start && end <= self.buf.len());
        self.consumed += (end - self.start) as u64;
        self.start = end;
    }

    /// Reclaims the consumed prefix. An empty buffer resets for free; a
    /// consumed prefix past [`COMPACT_THRESHOLD_BYTES`] is shifted out
    /// (one memmove), so a long-lived connection's buffer stays bounded
    /// by the partial tail plus the threshold instead of growing with
    /// total bytes received.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD_BYTES {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Consumed-prefix length past which [`MsgBuf::compact`] memmoves the
/// tail instead of waiting for an exactly-empty buffer.
const COMPACT_THRESHOLD_BYTES: usize = 16 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use igm_core::AccelConfig;

    #[test]
    fn hello_round_trips_every_field() {
        let mut cfg = SessionConfig::new("tenant-a", LifeguardKind::TaintCheck)
            .accel(AccelConfig::full(ItConfig::taint_style()))
            .premark(&[(0x1000, 0x40), (0x9000, 0x2000)]);
        cfg.synthetic_workload = true;
        let hello = hello_message(NET_VERSION, Codec::Predicted.wire(), &cfg);
        assert_eq!(hello[0], msg::HELLO);
        let len = u32::from_le_bytes(hello[1..5].try_into().unwrap()) as usize;
        assert_eq!(hello.len(), MSG_HEADER_BYTES + len);
        let (decoded, codec, version) = decode_hello(&hello[MSG_HEADER_BYTES..]).unwrap();
        assert_eq!(decoded.name, cfg.name);
        assert_eq!(decoded.lifeguard, cfg.lifeguard);
        assert_eq!(decoded.accel, cfg.accel);
        assert_eq!(decoded.synthetic_workload, cfg.synthetic_workload);
        assert_eq!(decoded.premark, cfg.premark);
        assert_eq!(codec, Codec::Predicted);
        assert_eq!(version, NET_VERSION);
        // Delta negotiation survives the round trip too.
        let hello = hello_message(NET_VERSION, Codec::Delta.wire(), &cfg);
        let (_, codec, _) = decode_hello(&hello[MSG_HEADER_BYTES..]).unwrap();
        assert_eq!(codec, Codec::Delta);
    }

    #[test]
    fn hello_negotiates_the_compat_version_range() {
        let cfg = SessionConfig::new("old-peer", LifeguardKind::AddrCheck);
        // A v2 peer is admitted and the lane remembers its version.
        let hello = hello_message(NET_VERSION_COMPAT, Codec::Predicted.wire(), &cfg);
        let (_, _, version) = decode_hello(&hello[MSG_HEADER_BYTES..]).unwrap();
        assert_eq!(version, NET_VERSION_COMPAT);
        // Versions outside the range are refused on both sides.
        for bad in [1, NET_VERSION + 1] {
            let hello = hello_message(bad, Codec::Predicted.wire(), &cfg);
            match decode_hello(&hello[MSG_HEADER_BYTES..]) {
                Err(NetError::VersionMismatch { theirs }) => assert_eq!(theirs, bad),
                other => panic!("version {bad}: expected mismatch, got {other:?}"),
            }
        }
        // The refusal names the version — the client's downgrade retry
        // keys on this.
        let reason = NetError::VersionMismatch { theirs: 9 }.to_string();
        assert!(reason.contains("protocol version"), "{reason}");
    }

    #[test]
    fn span_prefix_round_trips_sampled_and_unsampled() {
        let mut out = Vec::new();
        push_span_prefix(&mut out, None);
        assert_eq!(out.len(), SPAN_PREFIX_BYTES);
        assert_eq!(decode_span_prefix(&out).unwrap(), None);

        let tag = FrameTag { flow: 0xDEAD_BEEF, seq: u64::MAX - 7 };
        out.clear();
        push_span_prefix(&mut out, Some(tag));
        assert_eq!(out.len(), SPAN_PREFIX_BYTES);
        assert_eq!(decode_span_prefix(&out).unwrap(), Some(tag));

        // Hostile prefixes: bad flags, sampled bit with the null flow.
        let mut bad = out.clone();
        bad[0] = 2;
        assert!(matches!(decode_span_prefix(&bad), Err(NetError::Malformed(_))));
        let mut null_flow = out.clone();
        null_flow[4..8].fill(0);
        assert!(matches!(decode_span_prefix(&null_flow), Err(NetError::Malformed(_))));
    }

    #[test]
    fn hello_version_and_magic_are_enforced() {
        let cfg = SessionConfig::new("t", LifeguardKind::AddrCheck);
        let hello = hello_message(99, Codec::Predicted.wire(), &cfg);
        match decode_hello(&hello[MSG_HEADER_BYTES..]) {
            Err(NetError::VersionMismatch { theirs: 99 }) => {}
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let mut bad = hello_message(NET_VERSION, Codec::Predicted.wire(), &cfg);
        bad[MSG_HEADER_BYTES] = b'X';
        assert!(matches!(decode_hello(&bad[MSG_HEADER_BYTES..]), Err(NetError::BadMagic)));
    }

    #[test]
    fn hello_rejects_an_unknown_trace_codec() {
        let cfg = SessionConfig::new("t", LifeguardKind::AddrCheck);
        let hello = hello_message(NET_VERSION, 7, &cfg);
        match decode_hello(&hello[MSG_HEADER_BYTES..]) {
            Err(NetError::UnsupportedCodec { theirs: 7 }) => {}
            other => panic!("expected unsupported codec, got {other:?}"),
        }
    }

    #[test]
    fn control_messages_round_trip() {
        let w = welcome_message(4096);
        assert_eq!(decode_welcome(&w[MSG_HEADER_BYTES..]).unwrap(), 4096);
        let c = credit_message(777);
        assert_eq!(decode_credit(&c[MSG_HEADER_BYTES..]).unwrap(), 777);
        let stats = FinStats { chunks: 3, records: 4096, frame_bytes: 17_000, credit_stalls: 2 };
        let f = fin_message(&stats);
        assert_eq!(decode_fin(&f[MSG_HEADER_BYTES..]).unwrap(), stats);
        let a = fin_ack_message(4096);
        assert_eq!(decode_fin_ack(&a[MSG_HEADER_BYTES..]).unwrap(), 4096);
        let e = error_message("nope");
        assert_eq!(decode_error(&e[MSG_HEADER_BYTES..]).unwrap(), "nope");
    }

    #[test]
    fn msgbuf_stays_bounded_on_a_long_stream_with_partial_tails() {
        // Feed 10k messages such that a partial tail is buffered at every
        // fill (so the exact-empty reset never fires): the consumed
        // prefix must be compacted away instead of growing forever.
        let msg = credit_message(7);
        let k = 10_000usize;
        let mut stream = Vec::with_capacity(k * msg.len());
        for _ in 0..k {
            stream.extend_from_slice(&msg);
        }
        let mut buf = MsgBuf::new();
        let mut fed = 0usize;
        let mut consumed = 0usize;
        while fed < stream.len() {
            let end = (fed + msg.len() + 1).min(stream.len());
            let mut r = &stream[fed..end];
            let _ = buf.fill_from(&mut r, usize::MAX).unwrap();
            fed = end;
            while let Some((_, range)) = buf.peek_message().unwrap() {
                buf.consume(range.end);
                consumed += 1;
            }
            assert!(
                buf.buf.len() <= COMPACT_THRESHOLD_BYTES + 2 * (msg.len() + 1),
                "buffer grew past the compaction bound: {} bytes",
                buf.buf.len()
            );
        }
        assert_eq!(consumed, k);
        assert_eq!(buf.stream_pos(), stream.len() as u64);
    }

    #[test]
    fn hello_rejects_hostile_accelerator_geometry() {
        // Zero M-TLB capacity (would assert in MetadataTlb::new)…
        let mut cfg = SessionConfig::new("t", LifeguardKind::TaintCheck).accel(AccelConfig {
            lma: true,
            mtlb_entries: 0,
            it: None,
            if_geometry: None,
        });
        let hello = hello_message(NET_VERSION, Codec::Predicted.wire(), &cfg);
        assert!(matches!(decode_hello(&hello[MSG_HEADER_BYTES..]), Err(NetError::Malformed(_))));
        // …an absurd M-TLB capacity (would drive a huge allocation)…
        cfg.accel.mtlb_entries = u32::MAX as usize;
        let hello = hello_message(NET_VERSION, Codec::Predicted.wire(), &cfg);
        assert!(matches!(decode_hello(&hello[MSG_HEADER_BYTES..]), Err(NetError::Malformed(_))));
        // …and non-power-of-two / oversized-way filter geometry.
        for geo in [
            IfGeometry { entries: 0, ways: 0 },
            IfGeometry { entries: 48, ways: 0 },
            IfGeometry { entries: 32, ways: 3 },
            IfGeometry { entries: 32, ways: 64 },
        ] {
            let cfg = SessionConfig::new("t", LifeguardKind::TaintCheck).accel(AccelConfig {
                lma: true,
                mtlb_entries: 64,
                it: None,
                if_geometry: Some(geo),
            });
            let hello = hello_message(NET_VERSION, Codec::Predicted.wire(), &cfg);
            assert!(
                matches!(decode_hello(&hello[MSG_HEADER_BYTES..]), Err(NetError::Malformed(_))),
                "geometry {geo:?} must be refused"
            );
        }
    }

    #[test]
    fn msgbuf_reassembles_split_messages() {
        let mut buf = MsgBuf::new();
        let msg1 = credit_message(1);
        let msg2 = credit_message(2);
        let mut bytes = msg1.clone();
        bytes.extend_from_slice(&msg2);
        // Feed in awkward splits.
        for piece in bytes.chunks(3) {
            let mut r = piece;
            let _ = buf.fill_from(&mut r, usize::MAX).unwrap();
        }
        let (ty, range) = buf.peek_message().unwrap().unwrap();
        assert_eq!(ty, msg::CREDIT);
        assert_eq!(decode_credit(buf.bytes(range.clone())).unwrap(), 1);
        buf.consume(range.end);
        let (_, range) = buf.peek_message().unwrap().unwrap();
        assert_eq!(decode_credit(buf.bytes(range.clone())).unwrap(), 2);
        buf.consume(range.end);
        assert!(buf.peek_message().unwrap().is_none());
        assert!(!buf.has_buffered());
        assert_eq!(buf.stream_pos(), bytes.len() as u64);
    }
}
