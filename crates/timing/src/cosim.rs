//! The producer/consumer co-simulation.
//!
//! One pass over the trace computes three timelines:
//!
//! * the **stand-alone** application (no monitoring; its own cache
//!   hierarchy) — the denominator of every slowdown;
//! * the **monitored producer** — same instruction stream plus log-write
//!   traffic and wrapper/annotation overheads, stalled when the log buffer
//!   fills and at system calls until the consumer drains;
//! * the **consumer** — hardware dispatch per record plus, for every
//!   delivered event, the `nlba` dispatch and the handler's reported
//!   instructions and metadata references (played against the consumer's
//!   L1 and the *shared* L2).
//!
//! Buffer coupling uses the classic bounded-queue recurrence: the producer
//! cannot append record *i* until the consumer has freed enough bytes; the
//! consumer cannot start record *i* before the producer finishes it.

use crate::cache::Cache;
use crate::config::SystemConfig;
use crate::params::*;
use igm_isa::{Annotation, TraceEntry, TraceOp};
use igm_lba::record::compressed_size;
use std::collections::VecDeque;

/// Private caches of one core.
#[derive(Debug)]
struct CoreCaches {
    l1i: Cache,
    l1d: Cache,
}

impl CoreCaches {
    fn new(cfg: &SystemConfig) -> CoreCaches {
        CoreCaches { l1i: Cache::new(cfg.l1i), l1d: Cache::new(cfg.l1d) }
    }
}

/// Timing outcome of one run.
#[derive(Debug, Clone, Default)]
pub struct TimingReport {
    /// Stand-alone application time, in cycles.
    pub app_alone_cycles: u64,
    /// Monitored application finish time, in cycles.
    pub monitored_cycles: u64,
    /// Consumer finish time, in cycles.
    pub consumer_cycles: u64,
    /// Producer cycles lost to a full log buffer.
    pub producer_stall_cycles: u64,
    /// Producer cycles lost to system-call drains.
    pub syscall_drain_cycles: u64,
    /// Records processed.
    pub records: u64,
    /// Events delivered to handlers.
    pub delivered_events: u64,
    /// Handler instructions executed on the consumer.
    pub handler_instrs: u64,
}

impl TimingReport {
    /// Monitored / stand-alone time: the paper's slowdown metric.
    pub fn slowdown(&self) -> f64 {
        if self.app_alone_cycles == 0 {
            1.0
        } else {
            self.monitored_cycles as f64 / self.app_alone_cycles as f64
        }
    }
}

/// The co-simulator. Drive it with [`CoSim::step_record`] once per trace
/// record, then call [`CoSim::finish`].
#[derive(Debug)]
pub struct CoSim {
    cfg: SystemConfig,
    prod: CoreCaches,
    cons: CoreCaches,
    shared_l2: Cache,
    alone: CoreCaches,
    alone_l2: Cache,
    /// In-flight records: (consumer finish tick, size in bytes).
    inflight: VecDeque<(u64, u32)>,
    occupied_bytes: u32,
    prod_time: u64,
    cons_time: u64,
    alone_time: u64,
    stall_ticks: u64,
    drain_ticks: u64,
    records: u64,
    delivered: u64,
    handler_instrs: u64,
}

impl CoSim {
    /// Creates a co-simulator for `cfg`.
    pub fn new(cfg: SystemConfig) -> CoSim {
        CoSim {
            prod: CoreCaches::new(&cfg),
            cons: CoreCaches::new(&cfg),
            shared_l2: Cache::new(cfg.l2),
            alone: CoreCaches::new(&cfg),
            alone_l2: Cache::new(cfg.l2),
            cfg,
            inflight: VecDeque::new(),
            occupied_bytes: 0,
            prod_time: 0,
            cons_time: 0,
            alone_time: 0,
            stall_ticks: 0,
            drain_ticks: 0,
            records: 0,
            delivered: 0,
            handler_instrs: 0,
        }
    }

    /// Extra ticks beyond the pipelined L1 access for one data reference.
    fn data_penalty(l1: &mut Cache, l2: &mut Cache, mem_latency: u32, addr: u32) -> u64 {
        if l1.access(addr) {
            0
        } else if l2.access(addr) {
            l2.config().latency as u64 * TICKS_PER_CYCLE
        } else {
            (l2.config().latency as u64 + mem_latency as u64) * TICKS_PER_CYCLE
        }
    }

    /// Producer-side cost of one record (instruction execution, cache
    /// behaviour, wrapper overheads), charged to the chosen core state.
    fn producer_cost(
        entry: &TraceEntry,
        core: &mut CoreCaches,
        l2: &mut Cache,
        mem_latency: u32,
    ) -> u64 {
        let mut ticks;
        match &entry.op {
            TraceOp::Annot(a) => {
                ticks = ANNOTATION_TICKS;
                match a {
                    Annotation::Malloc { .. } | Annotation::Free { .. } => ticks += MALLOC_TICKS,
                    Annotation::Syscall { .. } | Annotation::ReadInput { .. } => {
                        ticks += SYSCALL_TICKS
                    }
                    Annotation::ThreadSwitch { .. } | Annotation::ThreadExit { .. } => {
                        ticks += THREAD_SWITCH_TICKS
                    }
                    _ => {}
                }
            }
            _ => {
                ticks = PRODUCER_INSTR_TICKS;
                ticks += Self::data_penalty(&mut core.l1i, l2, mem_latency, entry.pc);
                if let Some(m) = entry.mem_read() {
                    ticks += Self::data_penalty(&mut core.l1d, l2, mem_latency, m.addr);
                }
                if let Some(m) = entry.mem_write() {
                    ticks += Self::data_penalty(&mut core.l1d, l2, mem_latency, m.addr);
                }
            }
        }
        ticks
    }

    /// Advances both timelines by one record.
    ///
    /// `delivered_events`, `handler_instrs` and `handler_mem` describe the
    /// consumer-side work this record caused after acceleration (from the
    /// dispatch pipeline and the lifeguard's [`CostSink`]); pass zeros for
    /// an unmonitored run.
    ///
    /// [`CostSink`]: https://docs.rs/igm-lifeguards
    pub fn step_record(
        &mut self,
        entry: &TraceEntry,
        delivered_events: u32,
        handler_instrs: u64,
        handler_mem: &[u32],
    ) {
        self.records += 1;
        self.delivered += delivered_events as u64;
        self.handler_instrs += handler_instrs;
        let mem_latency = self.cfg.mem_latency;

        // --- stand-alone timeline (own cache hierarchy, no log) ---
        self.alone_time +=
            Self::producer_cost(entry, &mut self.alone, &mut self.alone_l2, mem_latency);

        // --- monitored producer ---
        let size = compressed_size(entry);
        // Backpressure: free space by waiting for the consumer to finish
        // the oldest in-flight records.
        while self.occupied_bytes + size > self.cfg.log_buffer_bytes {
            let (finish, freed) =
                self.inflight.pop_front().expect("occupied bytes imply in-flight records");
            self.occupied_bytes -= freed;
            if finish > self.prod_time {
                self.stall_ticks += finish - self.prod_time;
                self.prod_time = finish;
            }
        }
        // System-call containment: drain the buffer before entering the
        // kernel (paper §3).
        if let TraceOp::Annot(a) = &entry.op {
            if a.is_sync_point() && self.cons_time > self.prod_time {
                self.drain_ticks += self.cons_time - self.prod_time;
                self.prod_time = self.cons_time;
            }
        }
        let mut pcost =
            Self::producer_cost(entry, &mut self.prod, &mut self.shared_l2, mem_latency);
        // Log-write traffic: the record buffer drains one 64 B line to the
        // L2 per LOG_LINE_RECORDS records; the store buffer hides all but
        // about a cycle of it.
        if self.records.is_multiple_of(LOG_LINE_RECORDS) {
            pcost += TICKS_PER_CYCLE;
        }
        self.prod_time += pcost;

        // --- consumer ---
        let mut ccost = DISPATCH_TICKS_PER_RECORD;
        if self.records.is_multiple_of(LOG_LINE_RECORDS) {
            // Fetch the next log line from the L2-resident buffer.
            ccost += self.cfg.l2.latency as u64 * TICKS_PER_CYCLE;
        }
        ccost += delivered_events as u64 * NLBA_TICKS;
        ccost += handler_instrs * HANDLER_INSTR_TICKS;
        for &va in handler_mem {
            ccost += Self::data_penalty(&mut self.cons.l1d, &mut self.shared_l2, mem_latency, va);
        }
        let start = self.cons_time.max(self.prod_time);
        self.cons_time = start + ccost;
        self.inflight.push_back((self.cons_time, size));
        self.occupied_bytes += size;
    }

    /// Finalizes the run: the application's completion additionally waits
    /// for the lifeguard to finish checking (the final drain).
    pub fn finish(mut self) -> TimingReport {
        if self.cons_time > self.prod_time {
            self.drain_ticks += self.cons_time - self.prod_time;
            self.prod_time = self.cons_time;
        }
        TimingReport {
            app_alone_cycles: self.alone_time / TICKS_PER_CYCLE,
            monitored_cycles: self.prod_time / TICKS_PER_CYCLE,
            consumer_cycles: self.cons_time / TICKS_PER_CYCLE,
            producer_stall_cycles: self.stall_ticks / TICKS_PER_CYCLE,
            syscall_drain_cycles: self.drain_ticks / TICKS_PER_CYCLE,
            records: self.records,
            delivered_events: self.delivered,
            handler_instrs: self.handler_instrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{MemRef, OpClass, Reg};

    fn instr(i: u32) -> TraceEntry {
        TraceEntry::op(0x1000 + (i % 16) * 4, OpClass::ImmToReg { rd: Reg::Eax })
    }

    fn load(i: u32) -> TraceEntry {
        TraceEntry::op(
            0x1000,
            OpClass::MemToReg { src: MemRef::word(0x9000 + (i % 16) * 4), rd: Reg::Eax },
        )
    }

    #[test]
    fn unmonitored_run_has_unit_slowdown() {
        let mut sim = CoSim::new(SystemConfig::isca08());
        for i in 0..10_000 {
            sim.step_record(&instr(i), 0, 0, &[]);
        }
        let r = sim.finish();
        // Hardware dispatch is faster than the producer: only the ~1.6%
        // log-capture overhead remains.
        assert!(r.slowdown() < 1.03, "slowdown {}", r.slowdown());
    }

    #[test]
    fn heavy_handlers_make_the_consumer_the_bottleneck() {
        let mut sim = CoSim::new(SystemConfig::isca08());
        for i in 0..50_000 {
            // Every record delivers one event with a 10-instruction handler.
            sim.step_record(&load(i), 1, 10, &[0x2000_0000 + (i % 8) * 64]);
        }
        let r = sim.finish();
        // Producer ~1 cycle/record; consumer ~12+ cycles/record.
        assert!(r.slowdown() > 5.0, "slowdown {}", r.slowdown());
        assert!(r.producer_stall_cycles + r.syscall_drain_cycles > 0);
    }

    #[test]
    fn slowdown_scales_with_handler_cost() {
        let run = |instrs: u64| {
            let mut sim = CoSim::new(SystemConfig::isca08());
            for i in 0..20_000 {
                sim.step_record(&load(i), 1, instrs, &[]);
            }
            sim.finish().slowdown()
        };
        let light = run(2);
        let heavy = run(12);
        assert!(heavy > light * 1.5, "light {light}, heavy {heavy}");
    }

    #[test]
    fn filtered_events_cost_nothing() {
        let run = |delivered: u32| {
            let mut sim = CoSim::new(SystemConfig::isca08());
            for i in 0..20_000 {
                sim.step_record(&load(i), delivered, delivered as u64 * 8, &[]);
            }
            sim.finish().slowdown()
        };
        assert!(run(0) < run(1));
    }

    #[test]
    fn syscalls_drain_the_buffer() {
        let mut sim = CoSim::new(SystemConfig::isca08());
        for i in 0..1000 {
            sim.step_record(&load(i), 1, 50, &[]);
        }
        let sys = TraceEntry::annot(0, Annotation::Syscall { arg_reg: None, arg_mem: None });
        sim.step_record(&sys, 0, 5, &[]);
        let r = sim.finish();
        assert!(r.syscall_drain_cycles > 0);
    }

    #[test]
    fn cold_cache_misses_show_up_in_alone_time() {
        let mut sim = CoSim::new(SystemConfig::isca08());
        // Pointer-chase over 8 MB: most loads miss to memory.
        for i in 0..10_000u32 {
            let addr = 0x4000_0000 + (i.wrapping_mul(2_654_435_761) % (8 << 20));
            let e = TraceEntry::op(
                0x1000,
                OpClass::MemToReg { src: MemRef::word(addr & !3), rd: Reg::Eax },
            );
            sim.step_record(&e, 0, 0, &[]);
        }
        let r = sim.finish();
        // >> 1 cycle per instruction.
        assert!(r.app_alone_cycles > 10_000 * 50, "alone {}", r.app_alone_cycles);
    }

    #[test]
    fn report_accounting() {
        let mut sim = CoSim::new(SystemConfig::isca08());
        for i in 0..100 {
            sim.step_record(&instr(i), 2, 6, &[]);
        }
        let r = sim.finish();
        assert_eq!(r.records, 100);
        assert_eq!(r.delivered_events, 200);
        assert_eq!(r.handler_instrs, 600);
        assert!(r.consumer_cycles >= r.monitored_cycles.min(r.consumer_cycles));
    }
}
