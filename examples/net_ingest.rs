//! Distributed monitoring over loopback: one ingest server, four remote
//! tenants, one `MonitorPool`.
//!
//! Each "remote" application connects with a `TraceForwarder`, handshakes
//! its tenant configuration (lifeguard, accelerators, premarked regions),
//! and streams its record log as codec frames under the server's byte
//! credits — the software analogue of the paper's application-core →
//! lifeguard-core log transport, stretched across a socket. The server
//! thread accepts all four connections and multiplexes them through the
//! shared `Ingestor` into the pool. One tenant carries a buggy epilogue;
//! the example re-runs it locally and aborts unless the network path
//! reproduced the local violations and dispatch stats exactly (this is
//! the CI loopback smoke). Run with:
//!
//! ```sh
//! cargo run --release --example net_ingest
//! ```

use igm::isa::{Annotation, MemRef, OpClass, Reg, TraceEntry};
use igm::lifeguards::LifeguardKind;
use igm::net::{ForwarderConfig, IngestServer, NetServerConfig, TraceForwarder};
use igm::runtime::{stats_table, MonitorPool, PoolConfig, SessionConfig};
use igm::workload::Benchmark;

const N: u64 = 100_000;
const CHUNK: u32 = 16 * 1024;

/// An out-of-bounds heap read appended to gzip's trace: AddrCheck must
/// flag it identically on the local and network paths.
fn buggy_gzip() -> Vec<TraceEntry> {
    let mut trace: Vec<TraceEntry> = Benchmark::Gzip.trace(N).collect();
    trace.extend([
        TraceEntry::annot(0x9100_0000, Annotation::Malloc { base: 0x0a00_0000, size: 64 }),
        TraceEntry::op(
            0x9100_0008,
            OpClass::MemToReg { src: MemRef::word(0x0a00_0040), rd: Reg::Edx },
        ),
        TraceEntry::annot(0x9100_0014, Annotation::Free { base: 0x0a00_0000 }),
    ]);
    trace
}

fn tenant_cfg(bench: Benchmark, kind: LifeguardKind) -> SessionConfig {
    SessionConfig::new(bench.name(), kind).synthetic().premark(&bench.profile().premark_regions())
}

fn main() {
    let pool = MonitorPool::new(PoolConfig { chunk_bytes: CHUNK, ..PoolConfig::with_workers(4) });

    // Local reference run of the buggy tenant, for the equivalence check.
    let local = {
        let session = pool.open_session(tenant_cfg(Benchmark::Gzip, LifeguardKind::AddrCheck));
        session.stream(buggy_gzip()).expect("pool alive");
        session.finish()
    };
    assert!(!local.violations.is_empty(), "the epilogue must trip AddrCheck locally");

    let server =
        IngestServer::bind("127.0.0.1:0", &pool, NetServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("bound");
    println!("ingest server on {addr}; 4 tenants x {N} records over loopback\n");

    let tenants: [(Benchmark, LifeguardKind); 4] = [
        (Benchmark::Gzip, LifeguardKind::AddrCheck),
        (Benchmark::Mcf, LifeguardKind::MemCheck),
        (Benchmark::Gcc, LifeguardKind::TaintCheck),
        (Benchmark::Vpr, LifeguardKind::TaintCheckDetailed),
    ];
    let clients: Vec<_> = tenants
        .into_iter()
        .map(|(bench, kind)| {
            std::thread::spawn(move || {
                let fcfg = ForwarderConfig { chunk_bytes: CHUNK, ..ForwarderConfig::default() };
                let mut fwd = TraceForwarder::connect_with(addr, &tenant_cfg(bench, kind), fcfg)
                    .expect("connect");
                if matches!(bench, Benchmark::Gzip) {
                    fwd.stream(buggy_gzip()).expect("stream");
                } else {
                    fwd.stream(bench.trace(N)).expect("stream");
                }
                (bench.name(), fwd.finish().expect("clean FIN"))
            })
        })
        .collect();

    // One thread: accept, handshake, credit flow, multiplexed ingest.
    let report = server.serve_connections(clients.len());
    let client_reports: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    assert!(report.ingest.errors.is_empty(), "lane errors: {:?}", report.ingest.errors);
    assert!(report.rejected.is_empty(), "rejected: {:?}", report.rejected);
    print!("{}", stats_table(&report.ingest.sessions));

    println!("\nlane        batches   records   deferred   pending-polls");
    for (name, lane) in &report.ingest.lanes {
        println!(
            "{name:<10} {:>8} {:>9} {:>10} {:>15}",
            lane.batches, lane.records, lane.deferred_sends, lane.pending_polls
        );
    }
    println!("\nclient      chunks    frame-bytes   credit-stalls   stall-ms");
    for (name, r) in &client_reports {
        println!(
            "{name:<10} {:>7} {:>13} {:>15} {:>10.1}",
            r.stats.chunks,
            r.stats.frame_bytes,
            r.stats.credit_stalls,
            r.stats.credit_stall_nanos as f64 / 1e6,
        );
        assert_eq!(r.server_records, r.stats.records, "{name}: records lost in flight");
    }

    // The network transport must be semantically invisible: the remote
    // gzip run reproduces the local one exactly.
    let remote = report
        .ingest
        .sessions
        .iter()
        .find(|s| s.name == Benchmark::Gzip.name())
        .expect("gzip session");
    assert_eq!(remote.records, local.records, "record counts diverge");
    assert_eq!(remote.violations, local.violations, "violations diverge");
    assert_eq!(remote.dispatch, local.dispatch, "dispatch stats diverge");
    println!(
        "\nnetwork path == local path for gzip/AddrCheck: {} records, {} violations, \
         dispatch stats identical",
        remote.records,
        remote.violations.len()
    );
    pool.shutdown();
}
