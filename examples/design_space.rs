//! Driving the design-space sweeps (the paper's §7.3 profiling study) on a
//! single workload: Inheritance Tracking effectiveness, Idempotent Filter
//! geometry curves, and M-TLB sizing.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use igm::accel::IfGeometry;
use igm::accel::ItConfig;
use igm::profiling::{
    if_reduction, it_reduction, mtlb_flexible, mtlb_miss_rate, trace_footprint, CcMode,
};
use igm::workload::Benchmark;

fn main() {
    let b = Benchmark::Gcc;
    let n = 120_000;

    println!("workload: {b}, {n} records\n");

    let it = it_reduction(b.trace(n), ItConfig::taint_style());
    let it_eager = it_reduction(b.trace(n), ItConfig::memcheck_style());
    println!("Inheritance Tracking");
    println!("  propagation events removed (TaintCheck policy): {:5.1}%", it * 100.0);
    println!("  with eager checks         (MemCheck policy)  : {:5.1}%", it_eager * 100.0);

    println!("\nIdempotent Filter (combined load/store category)");
    print!("  entries:");
    for e in [8usize, 16, 32, 64, 128, 256] {
        let r = if_reduction(b.trace(n), IfGeometry::fully_associative(e), CcMode::Combined);
        print!("  {e}->{:4.1}%", r * 100.0);
    }
    println!();
    let fa = if_reduction(b.trace(n), IfGeometry::fully_associative(32), CcMode::Combined);
    let w4 = if_reduction(b.trace(n), IfGeometry::set_associative(32, 4), CcMode::Combined);
    println!("  32 entries: fully associative {:4.1}% vs 4-way {:4.1}%", fa * 100.0, w4 * 100.0);

    println!("\nMetadata-TLB (64 entries)");
    for bits in [20u8, 16, 12] {
        let m = mtlb_miss_rate(b.trace(n), bits, 64);
        println!("  fixed level-1 = {bits:2} bits: miss rate {:6.3}%", m * 100.0);
    }
    let fp = trace_footprint(b.trace(n));
    let (bits, m) = mtlb_flexible(&fp, b.trace(n), 64);
    println!(
        "  flexible sizing picks {bits} bits ({} touched pages): miss rate {:6.3}%",
        fp.len(),
        m * 100.0
    );
}
