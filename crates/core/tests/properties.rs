//! Property-based soundness tests for the three accelerators.
//!
//! The central contract (see `igm-core` crate docs) is that filtering never
//! changes lifeguard-visible state. Each accelerator gets an executable
//! oracle:
//!
//! * **IT** — a byte-granular software lifeguard implementing the paper's
//!   *unary propagation* semantics. With the clean-`%rs` optimization
//!   disabled, the IT-filtered event stream must produce *exactly* the same
//!   memory metadata, register metadata (after a final flush) and check
//!   verdicts as delivering every event. With the optimization enabled, the
//!   IT result is bounded between pessimistic-unary and generic propagation.
//! * **IF** — a model tracking which check keys are currently cached-valid;
//!   the filter must never discard a check whose key was invalidated since
//!   it was cached.
//! * **M-TLB** — the hardware translation must equal the software two-level
//!   walk for every layout/address, across reconfiguration flushes.

use igm_core::{
    IdempotentFilter, IfGeometry, IfOutcome, InheritanceTracker, ItConfig, MetadataTlb,
};
use igm_isa::{MemRef, MemSize, OpClass, Reg, RegSet};
use igm_lba::{CheckKind, DeliveredEvent, Event, IfEventConfig, MetaSource};
use igm_shadow::layout::ElemSize;
use igm_shadow::{ShadowLayout, TwoLevelShadow};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Byte-granular taint lifeguard model (the oracle).
// ---------------------------------------------------------------------------

/// Propagation semantics implemented by the model.
#[derive(Clone, Copy, PartialEq)]
enum Semantics {
    /// Non-unary destinations always become clean (pure unary assumption).
    PessimisticUnary,
    /// Non-unary destinations inherit the OR of their sources.
    Generic,
}

#[derive(Clone, Default)]
struct TaintModel {
    mem: HashMap<u32, bool>,
    regs: [[bool; 4]; 8],
}

impl TaintModel {
    fn mem_taint(&self, addr: u32) -> bool {
        *self.mem.get(&addr).unwrap_or(&false)
    }

    fn reg_clean(&self, r: Reg) -> bool {
        self.regs[r.index()].iter().all(|t| !t)
    }

    fn mem_range_any(&self, m: MemRef) -> bool {
        (0..m.size.bytes()).any(|i| self.mem_taint(m.addr.wrapping_add(i)))
    }

    fn set_mem_range(&mut self, m: MemRef, v: bool) {
        for i in 0..m.size.bytes() {
            self.mem.insert(m.addr.wrapping_add(i), v);
        }
    }

    fn check_verdict(&self, source: MetaSource) -> bool {
        match source {
            MetaSource::Reg(r) => !self.reg_clean(r),
            MetaSource::Mem(m) => self.mem_range_any(m),
        }
    }

    /// Applies one propagation event under the chosen semantics.
    fn apply(&mut self, op: &OpClass, sem: Semantics) {
        match *op {
            OpClass::ImmToReg { rd } => self.regs[rd.index()] = [false; 4],
            OpClass::ImmToMem { dst } => self.set_mem_range(dst, false),
            OpClass::RegSelf { .. } | OpClass::MemSelf { .. } | OpClass::ReadOnly { .. } => {}
            OpClass::RegToReg { rs, rd } => self.regs[rd.index()] = self.regs[rs.index()],
            OpClass::RegToMem { rs, dst } => {
                let v = self.regs[rs.index()];
                for i in 0..dst.size.bytes() {
                    self.mem.insert(dst.addr.wrapping_add(i), v[i as usize]);
                }
            }
            OpClass::MemToReg { src, rd } => {
                let mut v = [false; 4];
                for i in 0..src.size.bytes() {
                    v[i as usize] = self.mem_taint(src.addr.wrapping_add(i));
                }
                self.regs[rd.index()] = v;
            }
            OpClass::MemToMem { src, dst } => {
                // Read fully before writing (overlap-safe), zero-extend.
                let vals: Vec<bool> = (0..dst.size.bytes())
                    .map(|i| {
                        if i < src.size.bytes() {
                            self.mem_taint(src.addr.wrapping_add(i))
                        } else {
                            false
                        }
                    })
                    .collect();
                for (i, v) in vals.into_iter().enumerate() {
                    self.mem.insert(dst.addr.wrapping_add(i as u32), v);
                }
            }
            OpClass::DestRegOpReg { rs, rd } => match sem {
                Semantics::PessimisticUnary => self.regs[rd.index()] = [false; 4],
                Semantics::Generic => {
                    let any = !self.reg_clean(rs) || !self.reg_clean(rd);
                    self.regs[rd.index()] = [any; 4];
                }
            },
            OpClass::DestRegOpMem { src, rd } => match sem {
                Semantics::PessimisticUnary => self.regs[rd.index()] = [false; 4],
                Semantics::Generic => {
                    let any = self.mem_range_any(src) || !self.reg_clean(rd);
                    self.regs[rd.index()] = [any; 4];
                }
            },
            OpClass::DestMemOpReg { rs, dst } => match sem {
                Semantics::PessimisticUnary => self.set_mem_range(dst, false),
                Semantics::Generic => {
                    let any = !self.reg_clean(rs) || self.mem_range_any(dst);
                    self.set_mem_range(dst, any);
                }
            },
            OpClass::Other { writes, mem_write, .. } => {
                for r in writes.iter() {
                    self.regs[r.index()] = [false; 4];
                }
                if let Some(mw) = mem_write {
                    self.set_mem_range(mw, false);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Event generators.
// ---------------------------------------------------------------------------

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..8).prop_map(Reg::from_index)
}

fn arb_memref() -> impl Strategy<Value = MemRef> {
    // A small, heavily reused address window so overlaps and conflicts are
    // common.
    (0u32..48, prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4)])
        .prop_map(|(a, s)| MemRef::new(0x9000 + a, s))
}

fn arb_op() -> impl Strategy<Value = OpClass> {
    prop_oneof![
        arb_reg().prop_map(|rd| OpClass::ImmToReg { rd }),
        arb_memref().prop_map(|dst| OpClass::ImmToMem { dst }),
        arb_reg().prop_map(|rd| OpClass::RegSelf { rd }),
        arb_memref().prop_map(|dst| OpClass::MemSelf { dst }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rd)| OpClass::RegToReg { rs, rd }),
        (arb_reg(), arb_memref()).prop_map(|(rs, dst)| OpClass::RegToMem { rs, dst }),
        (arb_memref(), arb_reg()).prop_map(|(src, rd)| OpClass::MemToReg { src, rd }),
        (arb_memref(), arb_memref()).prop_map(|(src, dst)| OpClass::MemToMem { src, dst }),
        (arb_reg(), arb_reg()).prop_map(|(rs, rd)| OpClass::DestRegOpReg { rs, rd }),
        (arb_memref(), arb_reg()).prop_map(|(src, rd)| OpClass::DestRegOpMem { src, rd }),
        (arb_reg(), arb_memref()).prop_map(|(rs, dst)| OpClass::DestMemOpReg { rs, dst }),
        (arb_reg(), arb_reg(), proptest::option::of(arb_memref())).prop_map(|(a, b, mw)| {
            OpClass::Other {
                reads: RegSet::from_regs([a]),
                writes: RegSet::from_regs([a, b]),
                mem_read: None,
                mem_write: mw,
            }
        }),
    ]
}

/// An interleaved program: propagation ops, with occasional taint seeds
/// (modelling `ReadInput` handlers writing tainted metadata would need an
/// annotation; instead we seed taint directly in both paths) and check
/// probes.
#[derive(Debug, Clone)]
enum Step {
    Op(OpClass),
    SeedTaint(MemRef),
    CheckReg(Reg),
    CheckMem(MemRef),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => arb_op().prop_map(Step::Op),
        1 => arb_memref().prop_map(Step::SeedTaint),
        1 => arb_reg().prop_map(Step::CheckReg),
        1 => arb_memref().prop_map(Step::CheckMem),
    ]
}

/// Runs a step sequence through the IT hardware, applying delivered events
/// to a software model; returns the model and collected check verdicts.
fn run_it_path(steps: &[Step], cfg: ItConfig, sem: Semantics) -> (TaintModel, Vec<bool>) {
    let mut it = InheritanceTracker::new(cfg);
    let mut sw = TaintModel::default();
    let mut verdicts = Vec::new();
    let mut out: Vec<DeliveredEvent> = Vec::new();
    for (pc, step) in steps.iter().enumerate() {
        out.clear();
        match step {
            Step::Op(op) => it.process(pc as u32, Event::Prop(*op), &mut out),
            Step::SeedTaint(m) => {
                // Taint arrives via an annotation in real life; the dispatch
                // pipeline flushes IT first, so do the same here.
                it.flush_all(pc as u32, &mut out);
                for d in out.drain(..) {
                    if let Event::Prop(op) = d.event {
                        sw.apply(&op, sem);
                    }
                }
                sw.set_mem_range(*m, true);
                continue;
            }
            Step::CheckReg(r) => {
                it.process(
                    pc as u32,
                    Event::Check { kind: CheckKind::JumpTarget, source: MetaSource::Reg(*r) },
                    &mut out,
                );
                // Filtered check => clean verdict; otherwise evaluate the
                // (possibly rewritten) source against software state.
                let verdict = out.drain(..).fold(false, |acc, d| {
                    acc | match d.event {
                        Event::Check { source, .. } => sw.check_verdict(source),
                        _ => unreachable!("check processing only emits checks"),
                    }
                });
                verdicts.push(verdict);
                continue;
            }
            Step::CheckMem(m) => {
                verdicts.push(sw.check_verdict(MetaSource::Mem(*m)));
                continue;
            }
        }
        for d in out.drain(..) {
            match d.event {
                Event::Prop(op) => sw.apply(&op, sem),
                Event::Check { .. } => { /* MemCheck-style eager checks */ }
                _ => unreachable!("IT only emits props and checks"),
            }
        }
    }
    // Final flush: software must end up with the complete register state.
    out.clear();
    it.flush_all(u32::MAX, &mut out);
    for d in out.drain(..) {
        if let Event::Prop(op) = d.event {
            sw.apply(&op, sem);
        }
    }
    (sw, verdicts)
}

/// Runs the same steps delivering every event directly (the baseline).
fn run_baseline(steps: &[Step], sem: Semantics) -> (TaintModel, Vec<bool>) {
    let mut sw = TaintModel::default();
    let mut verdicts = Vec::new();
    for step in steps {
        match step {
            Step::Op(op) => sw.apply(op, sem),
            Step::SeedTaint(m) => sw.set_mem_range(*m, true),
            Step::CheckReg(r) => verdicts.push(sw.check_verdict(MetaSource::Reg(*r))),
            Step::CheckMem(m) => verdicts.push(sw.check_verdict(MetaSource::Mem(*m))),
        }
    }
    (sw, verdicts)
}

fn taint_set(m: &TaintModel) -> HashSet<u32> {
    m.mem.iter().filter(|(_, t)| **t).map(|(a, _)| *a).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// With the clean-`%rs` optimization off, IT is an exact filter: final
    /// memory metadata, flushed register metadata and every check verdict
    /// equal the deliver-everything baseline under pessimistic-unary
    /// semantics.
    #[test]
    fn it_exactly_preserves_pessimistic_unary_semantics(
        steps in proptest::collection::vec(arb_step(), 1..120)
    ) {
        let cfg = ItConfig {
            nonunary_check: false,
            clean_rs_do_nothing: false,
            conflict_detection: true,
        };
        let (sw_it, v_it) = run_it_path(&steps, cfg, Semantics::PessimisticUnary);
        let (sw_base, v_base) = run_baseline(&steps, Semantics::PessimisticUnary);
        prop_assert_eq!(v_it, v_base);
        prop_assert_eq!(taint_set(&sw_it), taint_set(&sw_base));
        prop_assert_eq!(sw_it.regs, sw_base.regs);
    }

    /// With the optimization on, the IT result is bounded: at least as
    /// tainted as pessimistic unary, at most as tainted as generic
    /// propagation.
    #[test]
    fn it_with_clean_rs_optimization_is_bounded(
        steps in proptest::collection::vec(arb_step(), 1..120)
    ) {
        let cfg = ItConfig::taint_style();
        let (sw_it, _) = run_it_path(&steps, cfg, Semantics::PessimisticUnary);
        let (lo, _) = run_baseline(&steps, Semantics::PessimisticUnary);
        let (hi, _) = run_baseline(&steps, Semantics::Generic);
        let it_taint = taint_set(&sw_it);
        let lo_taint = taint_set(&lo);
        let hi_taint = taint_set(&hi);
        prop_assert!(lo_taint.is_subset(&it_taint),
            "optimization must never lose pessimistic taint: missing {:?}",
            lo_taint.difference(&it_taint).collect::<Vec<_>>());
        prop_assert!(it_taint.is_subset(&hi_taint),
            "optimization must never exceed generic taint: extra {:?}",
            it_taint.difference(&hi_taint).collect::<Vec<_>>());
    }

    /// The Idempotent Filter never discards a check whose key was
    /// invalidated after it was cached (no stale filtering), for arbitrary
    /// interleavings and geometries.
    #[test]
    fn if_never_filters_stale_checks(
        ops in proptest::collection::vec((0u8..3, 0u32..32), 1..200),
        entries_log2 in 1u32..6,
        ways_sel in 0usize..3,
    ) {
        let entries = 1usize << entries_log2;
        let ways = [0, 1, 2][ways_sel].min(entries);
        let geom = if ways == 0 {
            IfGeometry::fully_associative(entries)
        } else {
            IfGeometry::set_associative(entries, ways)
        };
        let mut f = IdempotentFilter::new(geom);
        let check_cfg = IfEventConfig::cacheable_addr(0);
        let inval_match_cfg = IfEventConfig::invalidates_match(0, igm_lba::FieldSelect::ADDR_SIZE);
        let inval_all_cfg = IfEventConfig::invalidates_all();
        // Model: keys valid since their last insert (ignores capacity, so it
        // over-approximates cache contents).
        let mut valid: HashSet<u32> = HashSet::new();
        for (kind, a) in ops {
            let addr = 0x9000 + a * 4;
            let ev_check = Event::MemRead(MemRef::word(addr));
            match kind {
                0 => {
                    let outcome = f.process(0, &ev_check, &check_cfg);
                    if outcome == IfOutcome::Filtered {
                        prop_assert!(valid.contains(&addr),
                            "filtered a check at {addr:#x} that was invalidated");
                    }
                    valid.insert(addr);
                }
                1 => {
                    let ev = Event::MemWrite(MemRef::word(addr));
                    prop_assert_eq!(f.process(0, &ev, &inval_match_cfg), IfOutcome::Deliver);
                    valid.remove(&addr);
                }
                _ => {
                    let ev = Event::Annot(igm_isa::Annotation::Free { base: addr });
                    prop_assert_eq!(f.process(0, &ev, &inval_all_cfg), IfOutcome::Deliver);
                    valid.clear();
                }
            }
        }
    }

    /// Hardware `lma` translation equals the software two-level walk for
    /// arbitrary layouts and addresses, across reconfigurations.
    #[test]
    fn mtlb_matches_software_walk(
        l1_bits in 8u8..=20,
        elem_sel in 0u8..4,
        app_bytes_log2 in 0u32..4,
        addrs in proptest::collection::vec(any::<u32>(), 1..60),
        capacity_log2 in 1u32..6,
    ) {
        let elem = [ElemSize::B1, ElemSize::B2, ElemSize::B4, ElemSize::B8][elem_sel as usize];
        let app_bytes = 1u32 << app_bytes_log2;
        prop_assume!(32 - (l1_bits as u32) - app_bytes_log2 >= 1);
        let layout = ShadowLayout::for_coverage(l1_bits, app_bytes, elem).unwrap();
        let mut tlb = MetadataTlb::new(1 << capacity_log2);
        tlb.lma_config(layout);
        let mut shadow = TwoLevelShadow::new(layout, 0);
        for (i, a) in addrs.iter().enumerate() {
            if i == addrs.len() / 2 {
                // Mid-run reconfiguration with the same layout flushes the
                // TLB; translations must still agree afterwards.
                tlb.lma_config(layout);
            }
            let (va, _missed) = tlb.lma_or_fill(*a, || shadow.chunk_base_va(*a));
            prop_assert_eq!(va, shadow.elem_va(*a));
        }
    }

    /// The filter is deterministic: identical event sequences produce
    /// identical outcomes (no hidden global state).
    #[test]
    fn if_is_deterministic(
        ops in proptest::collection::vec((any::<bool>(), 0u32..64), 1..100)
    ) {
        let run = || {
            let mut f = IdempotentFilter::new(IfGeometry::set_associative(16, 4));
            let cfg = IfEventConfig::cacheable_addr(0);
            ops.iter().map(|(is_read, a)| {
                let m = MemRef::word(0x1000 + a * 4);
                let ev = if *is_read { Event::MemRead(m) } else { Event::MemWrite(m) };
                f.process(0, &ev, &cfg) == IfOutcome::Filtered
            }).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
