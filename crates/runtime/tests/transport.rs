//! Transport-level properties of the SPSC log channel and the worker pool:
//! records are never lost, duplicated or reordered under real thread
//! contention, and backpressure engages at capacity.

use igm_isa::{Annotation, OpClass, Reg, TraceEntry};
use igm_lba::chunks;
use igm_lifeguards::LifeguardKind;
use igm_runtime::{log_channel, MonitorPool, PoolConfig, SessionConfig};
use std::time::Duration;

/// A numbered instruction record (the pc encodes the sequence number).
fn rec(i: u32) -> TraceEntry {
    if i.is_multiple_of(13) {
        // Mix in 9-byte annotation records so occupancy is irregular.
        TraceEntry::annot(i, Annotation::Free { base: i })
    } else {
        TraceEntry::op(i, OpClass::ImmToReg { rd: Reg::Eax })
    }
}

#[test]
fn channel_preserves_the_stream_under_contention() {
    // Deliberately tiny capacities so producer and consumer collide
    // constantly; each configuration must still deliver the exact stream.
    for (capacity, chunk, n) in [(16u32, 4u32, 20_000u32), (64, 16, 20_000), (256, 64, 50_000)] {
        let (tx, rx) = log_channel(capacity);
        let producer = std::thread::spawn(move || {
            for batch in chunks((0..n).map(rec), chunk) {
                tx.send_batch(batch).expect("consumer alive");
            }
            // tx drops here, closing the channel.
        });
        let mut got = Vec::with_capacity(n as usize);
        while let Some(batch) = rx.recv_batch() {
            assert!(
                batch.compressed_bytes() <= capacity.max(chunk),
                "batch exceeds both capacity and chunk bound"
            );
            got.extend(batch.iter());
            rx.recycle(batch);
        }
        producer.join().unwrap();
        let want: Vec<TraceEntry> = (0..n).map(rec).collect();
        assert_eq!(got.len(), want.len(), "lost or duplicated records");
        assert_eq!(got, want, "stream reordered (capacity {capacity}, chunk {chunk})");
        let s = rx.stats();
        assert_eq!(s.pushed_records, n as u64);
        assert!(s.peak_bytes <= capacity.max(9), "occupancy bound violated: {}", s.peak_bytes);
    }
}

#[test]
fn backpressure_engages_at_capacity() {
    let (tx, rx) = log_channel(32);
    let producer = std::thread::spawn(move || {
        for batch in chunks((0..4_000).map(rec), 8) {
            tx.send_batch(batch).expect("consumer alive");
        }
        tx.stats()
    });
    // A deliberately slow consumer: the producer must hit the stall path.
    let mut total = 0usize;
    while let Some(batch) = rx.recv_batch() {
        total += batch.len();
        if total < 200 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let s = producer.join().unwrap();
    assert_eq!(total, 4_000);
    assert!(s.stall_events > 0, "producer never stalled against a slow consumer");
    assert!(s.stall_nanos > 0);
}

#[test]
fn pool_serves_concurrent_tenants_with_isolated_shards() {
    let pool = MonitorPool::new(PoolConfig { workers: 4, ..PoolConfig::default() });
    let violations = pool.violation_stream().expect("first take");
    assert!(pool.violation_stream().is_none(), "stream is single-consumer");

    // Six tenants with identical traces: one malloc'd block, in-bounds
    // accesses, then exactly one out-of-bounds load (an AddrCheck
    // violation per tenant).
    let trace: Vec<TraceEntry> =
        std::iter::once(TraceEntry::annot(0x1000, Annotation::Malloc { base: 0x9000, size: 64 }))
            .chain((0..5_000).map(|i| {
                TraceEntry::op(
                    0x1004 + i,
                    OpClass::MemToReg {
                        src: igm_isa::MemRef::word(0x9000 + (i % 16) * 4),
                        rd: Reg::Eax,
                    },
                )
            }))
            .chain(std::iter::once(TraceEntry::op(
                0x9999,
                OpClass::MemToReg { src: igm_isa::MemRef::word(0xdead_0000), rd: Reg::Ecx },
            )))
            .collect();

    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let session = pool.open_session(SessionConfig::new(
                    format!("tenant{t}"),
                    LifeguardKind::AddrCheck,
                ));
                let trace = trace.clone();
                scope.spawn(move || {
                    session.stream(trace).unwrap();
                    session.finish()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });

    for r in &reports {
        assert_eq!(r.records, 5_002);
        assert_eq!(r.violations.len(), 1, "{}: shard isolation broken", r.name);
        assert!(r.dispatch.delivered > 0);
        assert!(r.metadata_bytes > 0);
    }
    let stats = pool.stats();
    assert_eq!(stats.sessions_opened, 6);
    assert_eq!(stats.sessions_closed, 6);
    assert_eq!(stats.records, 6 * 5_002);
    assert_eq!(stats.violations, 6);

    let tagged = violations.drain();
    assert_eq!(tagged.len(), 6, "one aggregated violation per tenant");
    let mut tenants: Vec<String> = tagged.iter().map(|v| v.tenant.clone()).collect();
    tenants.sort();
    tenants.dedup();
    assert_eq!(tenants.len(), 6, "violations tagged with their own tenant");
    for v in &tagged {
        assert_eq!(v.lifeguard, LifeguardKind::AddrCheck);
    }
    pool.shutdown();
}

#[test]
fn shutdown_with_live_handle_terminates_instead_of_deadlocking() {
    let pool = MonitorPool::new(PoolConfig::with_workers(2));
    let session = pool.open_session(SessionConfig::new("abandoned", LifeguardKind::AddrCheck));
    session.send_batch((0..100).map(rec).collect::<Vec<_>>()).unwrap();
    // Shutdown with the producer handle still open: must return promptly
    // (the session is terminated, not waited on forever)...
    pool.shutdown();
    // ...and the orphaned handle's sends now fail instead of blocking.
    assert!(session.send_batch((0..10).map(rec).collect::<Vec<_>>()).is_err());
    // The terminated session still produced a report for what was drained.
    let report = session.finish();
    assert_eq!(report.records, 100);
}

#[test]
fn session_outlives_bursty_producers() {
    // Tiny channel + bursty producer: exercises repeated stall/drain cycles
    // through a live worker rather than a dedicated consumer thread.
    let pool = MonitorPool::new(PoolConfig {
        workers: 1,
        channel_capacity_bytes: 64,
        chunk_bytes: 16,
        ..PoolConfig::default()
    });
    let session = pool.open_session(SessionConfig::new("bursty", LifeguardKind::TaintCheck));
    session.stream((0..30_000).map(rec)).unwrap();
    let report = session.finish();
    assert_eq!(report.records, 30_000);
    assert_eq!(report.channel.pushed_records, 30_000);
    assert!(report.channel.peak_bytes <= 64);
    assert!(report.records_per_sec() > 0.0);
    pool.shutdown();
}
