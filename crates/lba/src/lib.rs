//! Log-Based Architecture (LBA) substrate.
//!
//! LBA (paper §3) captures a log record for every instruction retired by the
//! monitored application, compresses it, ships it through a buffer in the
//! shared on-chip cache, and redelivers it as one or more *events* to the
//! lifeguard running on another core. This crate provides:
//!
//! * [`record`] — the compressed-record size model used for log-buffer
//!   occupancy accounting, and the size-bounded chunker.
//! * [`batch`] — the structure-of-arrays [`TraceBatch`]: one transport
//!   chunk as parallel per-field columns (the software analogue of the
//!   hardware's compressed per-field record streams), the unit of data on
//!   the columnar hot path from the trace codec to the lifeguard workers.
//! * [`buffer`] — the bounded producer/consumer [`buffer::LogBuffer`].
//! * [`event`] — the event vocabulary delivered to lifeguards (propagation
//!   events, memory-access check events, source-check events, annotations)
//!   and the record→events extraction ("event mux" in the paper's
//!   Figure 1), implemented as a column sweep ([`sweep_batch`]) that
//!   dispatch sinks can fuse gating into.
//! * [`etct`] — the event type configuration table, including the Idempotent
//!   Filter configuration fields the paper adds to it (§5).
//!
//! The hardware accelerators themselves (Inheritance Tracking, Idempotent
//! Filters, Metadata-TLB) live in the `igm-core` crate; they plug in between
//! event extraction and handler dispatch.

pub mod batch;
pub mod buffer;
pub mod etct;
pub mod event;
pub mod record;

pub use batch::{Records, TraceBatch};
pub use buffer::LogBuffer;
pub use etct::{Etct, EtctEntry, FieldSelect, IfEventConfig};
pub use event::{
    extract_batch, extract_batch_entries, extract_events, sweep_batch, CheckKind, DeliveredEvent,
    Event, EventBuf, EventSink, EventType, MetaSource, NUM_EVENT_TYPES,
};
pub use record::{
    batch_bytes, chunks, compressed_size, Chunks, ANNOTATION_RECORD_BYTES, INSTR_RECORD_BYTES,
};
