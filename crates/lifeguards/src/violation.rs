//! Violations reported by the lifeguards.

use igm_isa::MemRef;
use std::fmt;

/// What a checked value's metadata belonged to, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceDesc {
    /// A register (by dense index, `igm_isa::Reg::index`).
    Reg(usize),
    /// A memory range.
    Mem(MemRef),
}

impl fmt::Display for SourceDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceDesc::Reg(i) => write!(f, "register #{i}"),
            SourceDesc::Mem(m) => write!(f, "memory {m}"),
        }
    }
}

/// A property violation detected by a lifeguard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// AddrCheck/MemCheck: access to unallocated memory.
    UnallocatedAccess {
        /// Faulting instruction.
        pc: u32,
        /// The access.
        mref: MemRef,
        /// Store (true) or load (false).
        is_write: bool,
    },
    /// AddrCheck/MemCheck: `free` of an already-freed block.
    DoubleFree { pc: u32, base: u32 },
    /// AddrCheck/MemCheck: `free` of a pointer that was never allocated.
    InvalidFree { pc: u32, base: u32 },
    /// AddrCheck/MemCheck: block still allocated at exit.
    Leak { base: u32, size: u32 },
    /// MemCheck: an uninitialized value reached a use (pointer dereference,
    /// conditional test, system call, or — under eager evaluation — any
    /// non-unary computation).
    UninitUse { pc: u32, source: SourceDesc },
    /// TaintCheck: tainted data reached a critical sink.
    TaintedUse {
        pc: u32,
        /// Which sink (jump target, system-call argument, format string).
        sink: TaintSink,
        source: SourceDesc,
    },
    /// LockSet: no common lock protects this shared location.
    DataRace { pc: u32, addr: u32, tid: u32 },
}

/// TaintCheck's critical sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintSink {
    JumpTarget,
    SyscallArg,
    FormatString,
}

impl Violation {
    /// The faulting instruction's pc, when the violation anchors to one
    /// (a [`Violation::Leak`] is an end-of-run property, not a site).
    pub fn pc(&self) -> Option<u32> {
        match self {
            Violation::UnallocatedAccess { pc, .. }
            | Violation::DoubleFree { pc, .. }
            | Violation::InvalidFree { pc, .. }
            | Violation::UninitUse { pc, .. }
            | Violation::TaintedUse { pc, .. }
            | Violation::DataRace { pc, .. } => Some(*pc),
            Violation::Leak { .. } => None,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::UnallocatedAccess { pc, mref, is_write } => write!(
                f,
                "{} of unallocated memory {mref} at pc {pc:#010x}",
                if *is_write { "store" } else { "load" }
            ),
            Violation::DoubleFree { pc, base } => {
                write!(f, "double free of {base:#010x} at pc {pc:#010x}")
            }
            Violation::InvalidFree { pc, base } => {
                write!(f, "invalid free of {base:#010x} at pc {pc:#010x}")
            }
            Violation::Leak { base, size } => {
                write!(f, "leak: {size} bytes at {base:#010x} never freed")
            }
            Violation::UninitUse { pc, source } => {
                write!(f, "use of uninitialized value from {source} at pc {pc:#010x}")
            }
            Violation::TaintedUse { pc, sink, source } => write!(
                f,
                "tainted data from {source} used as {} at pc {pc:#010x}",
                match sink {
                    TaintSink::JumpTarget => "an indirect jump target",
                    TaintSink::SyscallArg => "a system-call argument",
                    TaintSink::FormatString => "a format string",
                }
            ),
            Violation::DataRace { pc, addr, tid } => write!(
                f,
                "data race: thread {tid} accessed {addr:#010x} with empty lockset at pc {pc:#010x}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::MemSize;

    #[test]
    fn displays_are_informative() {
        let v = Violation::UnallocatedAccess {
            pc: 0x8048000,
            mref: MemRef::new(0x9000, MemSize::B4),
            is_write: true,
        };
        let s = v.to_string();
        assert!(s.contains("store") && s.contains("0x08048000"));

        let v = Violation::TaintedUse {
            pc: 4,
            sink: TaintSink::FormatString,
            source: SourceDesc::Mem(MemRef::byte(0x40)),
        };
        assert!(v.to_string().contains("format string"));

        let v = Violation::DataRace { pc: 0, addr: 0x10, tid: 1 };
        assert!(v.to_string().contains("race"));
    }
}
