//! The live stats endpoint: one `std::net` thread serving a registry.
//!
//! [`StatsServer::serve`] binds a TCP listener, spawns a single thread
//! named `igm-stats`, and answers plain HTTP/1.1 until [`StatsServer::stop`]
//! (or drop). It is deliberately minimal — no keep-alive, no TLS, no
//! framework — because its job is a `curl` or a Prometheus scrape against
//! a monitor that is busy doing real work:
//!
//! | path                  | body                                      |
//! |-----------------------|-------------------------------------------|
//! | `/metrics`            | Prometheus text exposition                |
//! | `/stats.json`         | [`MetricsSnapshot::to_json`]              |
//! | `/events.json?since=N`| event ring from sequence `N` (default 0)  |
//! | `/`                   | plain-text index of the above             |
//!
//! Every snapshot is taken on the serving thread; the hot paths feeding
//! the registry never notice a scrape.

#[cfg(doc)]
use crate::registry::MetricsSnapshot;

use crate::registry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How long the serving thread dozes between accept polls.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Per-connection read/write deadline — a stuck scraper must not wedge
/// the (single) serving thread.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Largest request head we bother reading.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running stats endpoint. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct StatsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `addr` (`"127.0.0.1:0"` picks a free port — read it back
    /// with [`StatsServer::local_addr`]) and starts serving `registry`.
    pub fn serve(
        addr: impl ToSocketAddrs,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("igm-stats".into())
            .spawn(move || serve_loop(listener, registry, stop2))?;
        Ok(StatsServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops serving and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Serve inline: one thread, one connection at a time —
                // a scrape endpoint, not a web server.
                let _ = handle_connection(stream, &registry);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let target = match read_request_target(&mut stream)? {
        Some(t) => t,
        None => return respond(&mut stream, 400, "text/plain; charset=utf-8", "bad request\n"),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target.as_str(), None),
    };
    match path {
        "/metrics" => {
            let body = registry.snapshot().to_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/stats.json" => {
            let body = registry.snapshot().to_json();
            respond(&mut stream, 200, "application/json", &body)
        }
        "/events.json" => {
            let since = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("since="))
                        .and_then(|v| v.parse::<u64>().ok())
                })
                .unwrap_or(0);
            let body = registry.events().since(since).to_json();
            respond(&mut stream, 200, "application/json", &body)
        }
        "/" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "igm stats endpoint\n\n/metrics            Prometheus text exposition\n/stats.json         metrics snapshot as JSON\n/events.json?since=N  lifecycle event ring\n",
        ),
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Reads the request head and returns the request target (`/metrics`,
/// `/events.json?since=3`, …), or `None` for an unparsable request.
fn read_request_target(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= MAX_REQUEST_BYTES {
            return Ok(None);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        head.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = match head.lines().next() {
        Some(l) => l,
        None => return Ok(None),
    };
    // "GET /path HTTP/1.1" — method and version are not worth policing.
    let mut parts = request_line.split_whitespace();
    let _method = parts.next();
    Ok(parts.next().map(str::to_owned))
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_json_events_and_404() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("igm_test_total", "test counter").add(7);
        registry.histogram("igm_test_nanos", "test latency").record(900);
        registry
            .events()
            .record(EventKind::LaneFailure { lane: "t0".into(), error: "boom".into() });

        let mut server = StatsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200"));
        assert!(metrics.contains("igm_test_total 7"));
        assert!(metrics.contains("igm_test_nanos_bucket"));

        let json = get(addr, "/stats.json");
        assert!(json.contains("\"igm_test_total\""));

        let events = get(addr, "/events.json?since=0");
        assert!(events.contains("\"lane_failure\""));
        assert!(events.contains("\"boom\""));
        assert!(get(addr, "/events.json?since=99").contains("\"events\": []"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/").contains("igm stats endpoint"));

        server.stop();
        // Stopped: new connections must fail (give the OS a beat).
        thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Some platforms accept into the dead listener's backlog;
                // a read then yields nothing.
                let mut s = TcpStream::connect(addr).unwrap();
                write!(s, "GET / HTTP/1.1\r\n\r\n").unwrap();
                let mut buf = String::new();
                s.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
                s.read_to_string(&mut buf).unwrap_or(0) == 0
            }
        );
    }
}
