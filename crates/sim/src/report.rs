//! Simulation run reports.

use igm_core::{AccelConfig, DispatchPipeline, DispatchStats, IfStats, ItStats};
use igm_lifeguards::{Lifeguard, LifeguardKind, Violation};
use igm_timing::TimingReport;

/// Everything a run produced: timing, pipeline statistics, accelerator
/// statistics, violations, and metadata footprint.
#[derive(Debug)]
pub struct SimReport {
    /// Which lifeguard ran.
    pub lifeguard: LifeguardKind,
    /// The (masked) accelerator configuration.
    pub accel: AccelConfig,
    /// Workload name, when run through a benchmark entry point.
    pub benchmark: Option<String>,
    /// The timing outcome.
    pub timing: TimingReport,
    /// Dispatch pipeline counters.
    pub dispatch: DispatchStats,
    /// Inheritance Tracking counters, when IT ran.
    pub it: Option<ItStats>,
    /// Idempotent Filter counters, when IF ran.
    pub if_stats: Option<IfStats>,
    /// Violations the lifeguard reported.
    pub violations: Vec<Violation>,
    /// Final lifeguard metadata footprint in bytes.
    pub metadata_bytes: u64,
}

impl SimReport {
    pub(crate) fn new(
        lifeguard: LifeguardKind,
        accel: AccelConfig,
        timing: TimingReport,
        pipeline: DispatchPipeline,
        mut lg: Box<dyn Lifeguard>,
    ) -> SimReport {
        SimReport {
            lifeguard,
            accel,
            benchmark: None,
            it: pipeline.it_stats().copied(),
            if_stats: pipeline.if_stats().copied(),
            dispatch: pipeline.stats().clone(),
            timing,
            violations: lg.take_violations(),
            metadata_bytes: lg.metadata_bytes(),
        }
    }

    pub(crate) fn named(mut self, name: &str) -> SimReport {
        self.benchmark = Some(name.to_owned());
        self
    }

    /// Monitored time over stand-alone time (the paper's y-axis).
    pub fn slowdown(&self) -> f64 {
        self.timing.slowdown()
    }

    /// Delivered events per record (a density measure).
    pub fn events_per_record(&self) -> f64 {
        if self.timing.records == 0 {
            0.0
        } else {
            self.dispatch.delivered as f64 / self.timing.records as f64
        }
    }

    /// One-line summary for experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} {:<28} {:<9} slowdown {:>5.2}x  events/rec {:>5.3}  violations {}",
            self.benchmark.as_deref().unwrap_or("-"),
            self.lifeguard.name(),
            self.accel.label(),
            self.slowdown(),
            self.events_per_record(),
            self.violations.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use igm_workload::Benchmark;

    #[test]
    fn summary_contains_key_fields() {
        let r = Simulator::new(SimConfig::optimized(LifeguardKind::TaintCheck))
            .run_benchmark(Benchmark::Mcf, 10_000);
        let s = r.summary();
        assert!(s.contains("mcf"));
        assert!(s.contains("TaintCheck"));
        assert!(s.contains("LMA+IT"));
        assert!(s.contains("slowdown"));
    }

    #[test]
    fn events_per_record_is_bounded() {
        let r = Simulator::new(SimConfig::baseline(LifeguardKind::AddrCheck))
            .run_benchmark(Benchmark::Gap, 10_000);
        assert!(r.events_per_record() > 0.0);
        assert!(r.events_per_record() < 4.0);
    }
}
