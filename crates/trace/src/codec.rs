//! The compact binary record codec and chunk framing.
//!
//! # Record encoding
//!
//! One [`TraceEntry`] encodes as:
//!
//! ```text
//! tag          1 byte   bits 0..6: flattened variant id (0..=25)
//!                       bit 7: entry carries a non-empty addr_regs set
//! pc           varint   zigzag(pc − prev_pc)   (delta stream per chunk)
//! [addr_regs]  1 byte   RegSet bitmap, present iff tag bit 7
//! payload      …        variant-specific, see below
//! ```
//!
//! Varints are LEB128 (7 value bits per byte, high bit = continuation).
//! Memory references share one per-chunk address-delta stream: a `MemRef`
//! encodes as `varint(zigzag(addr − prev_addr) << 2 | size_code)` with
//! size codes 0/1/2 for 1/2/4-byte accesses; address-valued annotation
//! payloads (malloc base, lock word, …) ride the same stream without the
//! size bits. Both delta streams reset at every chunk boundary, so chunks
//! decode independently.
//!
//! Registers encode as their dense index; register pairs pack into one
//! byte (`rs << 4 | rd`). Optional fields are announced by a flags byte.
//!
//! # Chunk framing
//!
//! A trace file is a 8-byte header (`b"IGMT"`, `u32` LE version) followed
//! by frames:
//!
//! ```text
//! records      u32 LE   entries in this chunk (> 0)
//! payload_len  u32 LE   encoded payload bytes (> 0)
//! checksum     u32 LE   FNV-1a-32 over the payload bytes
//! payload      payload_len bytes
//! ```
//!
//! A clean EOF at a frame boundary ends the trace; anything else —
//! truncated header or payload, checksum mismatch, zero-record or
//! zero-length frames, trailing payload bytes, out-of-range field
//! encodings — is a [`TraceError::Corrupt`] with the file offset. One
//! frame per transport batch keeps capture and replay chunk-for-chunk
//! identical with the live session that produced the file.

use igm_isa::{
    Annotation, CtrlOp, JumpTarget, MemRef, MemSize, OpClass, Reg, RegSet, TraceEntry, TraceOp,
};
use std::fmt;
use std::io::{self, Read, Write};

/// The four magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"IGMT";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Upper bound accepted for one frame's payload, so a corrupt length field
/// cannot drive a multi-gigabyte allocation before the checksum catches it.
const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// Errors produced while reading or writing a trace stream.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// Structural damage at `offset` bytes into the stream.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not an igm trace stream (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace format version {v} (reader speaks {FORMAT_VERSION})")
            }
            TraceError::Corrupt { offset, reason } => {
                write!(f, "corrupt trace stream at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> TraceError {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// FNV-1a-32 over `bytes` — cheap, dependency-free, and plenty to catch
/// the torn writes and bit rot the framing guards against (it is not a
/// cryptographic integrity check).
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Per-chunk delta-coder state (both streams reset at chunk boundaries).
#[derive(Debug, Default, Clone, Copy)]
struct CodecState {
    prev_pc: u32,
    prev_addr: u32,
}

/// Decode cursor over one chunk's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Stream offset of `bytes[0]`, for error reporting.
    base: u64,
}

impl<'a> Cursor<'a> {
    fn corrupt<T>(&self, reason: &'static str) -> Result<T, TraceError> {
        Err(TraceError::Corrupt { offset: self.base + self.pos as u64, reason })
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => self.corrupt("payload ends inside a record"),
        }
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return self.corrupt("varint overflows 64 bits");
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn reg(&mut self) -> Result<Reg, TraceError> {
        let b = self.byte()?;
        match Reg::try_from_index(b as usize) {
            Some(r) => Ok(r),
            None => self.corrupt("register index out of range"),
        }
    }

    fn reg_pair(&mut self) -> Result<(Reg, Reg), TraceError> {
        let b = self.byte()?;
        match (Reg::try_from_index((b >> 4) as usize), Reg::try_from_index((b & 0x0f) as usize)) {
            (Some(a), Some(c)) => Ok((a, c)),
            _ => self.corrupt("register index out of range"),
        }
    }

    fn opt_reg(&mut self) -> Result<Option<Reg>, TraceError> {
        let b = self.byte()?;
        if b == NO_REG {
            return Ok(None);
        }
        match Reg::try_from_index(b as usize) {
            Some(r) => Ok(Some(r)),
            None => self.corrupt("register index out of range"),
        }
    }

    fn mem_ref(&mut self, st: &mut CodecState) -> Result<MemRef, TraceError> {
        let v = self.varint()?;
        let size = match v & 0x3 {
            0 => MemSize::B1,
            1 => MemSize::B2,
            2 => MemSize::B4,
            _ => return self.corrupt("memory access size code out of range"),
        };
        let addr = self.resolve_addr(st, unzigzag(v >> 2))?;
        Ok(MemRef::new(addr, size))
    }

    fn addr(&mut self, st: &mut CodecState) -> Result<u32, TraceError> {
        let delta = unzigzag(self.varint()?);
        self.resolve_addr(st, delta)
    }

    fn resolve_addr(&self, st: &mut CodecState, delta: i64) -> Result<u32, TraceError> {
        match u32::try_from(st.prev_addr as i64 + delta) {
            Ok(addr) => {
                st.prev_addr = addr;
                Ok(addr)
            }
            Err(_) => self.corrupt("address delta leaves the 32-bit address space"),
        }
    }

    fn u32_varint(&mut self) -> Result<u32, TraceError> {
        match u32::try_from(self.varint()?) {
            Ok(v) => Ok(v),
            Err(_) => self.corrupt("32-bit field encoded with more than 32 bits"),
        }
    }
}

// ---------------------------------------------------------------------------
// Record encode/decode.
// ---------------------------------------------------------------------------

/// Tag bit set when the entry carries a non-empty `addr_regs` set.
const TAG_ADDR_REGS: u8 = 0x80;

/// `Option<Reg>` "absent" marker (register indices are `0..8`).
const NO_REG: u8 = 0x0f;

// Flattened variant tags.
const T_IMM_TO_REG: u8 = 0;
const T_IMM_TO_MEM: u8 = 1;
const T_REG_SELF: u8 = 2;
const T_MEM_SELF: u8 = 3;
const T_REG_TO_REG: u8 = 4;
const T_REG_TO_MEM: u8 = 5;
const T_MEM_TO_REG: u8 = 6;
const T_MEM_TO_MEM: u8 = 7;
const T_DEST_REG_OP_REG: u8 = 8;
const T_DEST_REG_OP_MEM: u8 = 9;
const T_DEST_MEM_OP_REG: u8 = 10;
const T_READ_ONLY: u8 = 11;
const T_OTHER: u8 = 12;
const T_CTRL_DIRECT: u8 = 13;
const T_CTRL_INDIRECT: u8 = 14;
const T_CTRL_COND: u8 = 15;
const T_CTRL_RET: u8 = 16;
const T_ANN_MALLOC: u8 = 17;
const T_ANN_FREE: u8 = 18;
const T_ANN_LOCK: u8 = 19;
const T_ANN_UNLOCK: u8 = 20;
const T_ANN_READ_INPUT: u8 = 21;
const T_ANN_SYSCALL: u8 = 22;
const T_ANN_PRINTF: u8 = 23;
const T_ANN_THREAD_SWITCH: u8 = 24;
const T_ANN_THREAD_EXIT: u8 = 25;

fn put_mem_ref(out: &mut Vec<u8>, st: &mut CodecState, m: MemRef) {
    let code = match m.size {
        MemSize::B1 => 0u64,
        MemSize::B2 => 1,
        MemSize::B4 => 2,
    };
    let delta = zigzag(m.addr as i64 - st.prev_addr as i64);
    put_varint(out, delta << 2 | code);
    st.prev_addr = m.addr;
}

fn put_addr(out: &mut Vec<u8>, st: &mut CodecState, addr: u32) {
    put_varint(out, zigzag(addr as i64 - st.prev_addr as i64));
    st.prev_addr = addr;
}

fn encode_entry(out: &mut Vec<u8>, st: &mut CodecState, e: &TraceEntry) {
    let tag_at = out.len();
    let mut tag = match &e.op {
        TraceOp::Op(op) => match op {
            OpClass::ImmToReg { .. } => T_IMM_TO_REG,
            OpClass::ImmToMem { .. } => T_IMM_TO_MEM,
            OpClass::RegSelf { .. } => T_REG_SELF,
            OpClass::MemSelf { .. } => T_MEM_SELF,
            OpClass::RegToReg { .. } => T_REG_TO_REG,
            OpClass::RegToMem { .. } => T_REG_TO_MEM,
            OpClass::MemToReg { .. } => T_MEM_TO_REG,
            OpClass::MemToMem { .. } => T_MEM_TO_MEM,
            OpClass::DestRegOpReg { .. } => T_DEST_REG_OP_REG,
            OpClass::DestRegOpMem { .. } => T_DEST_REG_OP_MEM,
            OpClass::DestMemOpReg { .. } => T_DEST_MEM_OP_REG,
            OpClass::ReadOnly { .. } => T_READ_ONLY,
            OpClass::Other { .. } => T_OTHER,
        },
        TraceOp::Ctrl(c) => match c {
            CtrlOp::Direct => T_CTRL_DIRECT,
            CtrlOp::Indirect { .. } => T_CTRL_INDIRECT,
            CtrlOp::CondBranch { .. } => T_CTRL_COND,
            CtrlOp::Ret { .. } => T_CTRL_RET,
        },
        TraceOp::Annot(a) => match a {
            Annotation::Malloc { .. } => T_ANN_MALLOC,
            Annotation::Free { .. } => T_ANN_FREE,
            Annotation::Lock { .. } => T_ANN_LOCK,
            Annotation::Unlock { .. } => T_ANN_UNLOCK,
            Annotation::ReadInput { .. } => T_ANN_READ_INPUT,
            Annotation::Syscall { .. } => T_ANN_SYSCALL,
            Annotation::PrintfFormat { .. } => T_ANN_PRINTF,
            Annotation::ThreadSwitch { .. } => T_ANN_THREAD_SWITCH,
            Annotation::ThreadExit { .. } => T_ANN_THREAD_EXIT,
        },
    };
    if !e.addr_regs.is_empty() {
        tag |= TAG_ADDR_REGS;
    }
    out.push(tag);
    put_varint(out, zigzag(e.pc as i64 - st.prev_pc as i64));
    st.prev_pc = e.pc;
    if !e.addr_regs.is_empty() {
        out.push(e.addr_regs.bits());
    }
    match &e.op {
        TraceOp::Op(op) => match *op {
            OpClass::ImmToReg { rd } | OpClass::RegSelf { rd } => out.push(rd.index() as u8),
            OpClass::ImmToMem { dst } | OpClass::MemSelf { dst } => put_mem_ref(out, st, dst),
            OpClass::RegToReg { rs, rd } | OpClass::DestRegOpReg { rs, rd } => {
                out.push((rs.index() as u8) << 4 | rd.index() as u8)
            }
            OpClass::RegToMem { rs, dst } | OpClass::DestMemOpReg { rs, dst } => {
                out.push(rs.index() as u8);
                put_mem_ref(out, st, dst);
            }
            OpClass::MemToReg { src, rd } | OpClass::DestRegOpMem { src, rd } => {
                put_mem_ref(out, st, src);
                out.push(rd.index() as u8);
            }
            OpClass::MemToMem { src, dst } => {
                put_mem_ref(out, st, src);
                put_mem_ref(out, st, dst);
            }
            OpClass::ReadOnly { src, reads } => {
                out.push(src.is_some() as u8);
                out.push(reads.bits());
                if let Some(m) = src {
                    put_mem_ref(out, st, m);
                }
            }
            OpClass::Other { reads, writes, mem_read, mem_write } => {
                out.push(mem_read.is_some() as u8 | (mem_write.is_some() as u8) << 1);
                out.push(reads.bits());
                out.push(writes.bits());
                if let Some(m) = mem_read {
                    put_mem_ref(out, st, m);
                }
                if let Some(m) = mem_write {
                    put_mem_ref(out, st, m);
                }
            }
        },
        TraceOp::Ctrl(c) => match *c {
            CtrlOp::Direct => {}
            CtrlOp::Indirect { target } => match target {
                JumpTarget::Reg(r) => {
                    out.push(0);
                    out.push(r.index() as u8);
                }
                JumpTarget::Mem(m) => {
                    out.push(1);
                    put_mem_ref(out, st, m);
                }
            },
            CtrlOp::CondBranch { input } => {
                out.push(input.map_or(NO_REG, |r| r.index() as u8));
            }
            CtrlOp::Ret { slot } => put_mem_ref(out, st, slot),
        },
        TraceOp::Annot(a) => match *a {
            Annotation::Malloc { base, size } => {
                put_addr(out, st, base);
                put_varint(out, size as u64);
            }
            Annotation::Free { base } => put_addr(out, st, base),
            Annotation::Lock { lock } | Annotation::Unlock { lock } => put_addr(out, st, lock),
            Annotation::ReadInput { base, len } => {
                put_addr(out, st, base);
                put_varint(out, len as u64);
            }
            Annotation::Syscall { arg_reg, arg_mem } => {
                out.push(arg_reg.is_some() as u8 | (arg_mem.is_some() as u8) << 1);
                if let Some(r) = arg_reg {
                    out.push(r.index() as u8);
                }
                if let Some(m) = arg_mem {
                    put_mem_ref(out, st, m);
                }
            }
            Annotation::PrintfFormat { fmt } => put_mem_ref(out, st, fmt),
            Annotation::ThreadSwitch { tid } | Annotation::ThreadExit { tid } => {
                put_varint(out, tid as u64)
            }
        },
    }
    debug_assert!(out.len() > tag_at);
}

fn decode_entry(cur: &mut Cursor<'_>, st: &mut CodecState) -> Result<TraceEntry, TraceError> {
    let tag = cur.byte()?;
    let pc_delta = unzigzag(cur.varint()?);
    let pc = match u32::try_from(st.prev_pc as i64 + pc_delta) {
        Ok(pc) => pc,
        Err(_) => return cur.corrupt("pc delta leaves the 32-bit address space"),
    };
    st.prev_pc = pc;
    let addr_regs = if tag & TAG_ADDR_REGS != 0 {
        let bits = cur.byte()?;
        if bits == 0 {
            return cur.corrupt("addr_regs flag set but bitmap empty");
        }
        RegSet::from_bits(bits)
    } else {
        RegSet::EMPTY
    };
    let op = match tag & !TAG_ADDR_REGS {
        T_IMM_TO_REG => TraceOp::Op(OpClass::ImmToReg { rd: cur.reg()? }),
        T_IMM_TO_MEM => TraceOp::Op(OpClass::ImmToMem { dst: cur.mem_ref(st)? }),
        T_REG_SELF => TraceOp::Op(OpClass::RegSelf { rd: cur.reg()? }),
        T_MEM_SELF => TraceOp::Op(OpClass::MemSelf { dst: cur.mem_ref(st)? }),
        T_REG_TO_REG => {
            let (rs, rd) = cur.reg_pair()?;
            TraceOp::Op(OpClass::RegToReg { rs, rd })
        }
        T_REG_TO_MEM => {
            let rs = cur.reg()?;
            TraceOp::Op(OpClass::RegToMem { rs, dst: cur.mem_ref(st)? })
        }
        T_MEM_TO_REG => {
            let src = cur.mem_ref(st)?;
            TraceOp::Op(OpClass::MemToReg { src, rd: cur.reg()? })
        }
        T_MEM_TO_MEM => {
            let src = cur.mem_ref(st)?;
            TraceOp::Op(OpClass::MemToMem { src, dst: cur.mem_ref(st)? })
        }
        T_DEST_REG_OP_REG => {
            let (rs, rd) = cur.reg_pair()?;
            TraceOp::Op(OpClass::DestRegOpReg { rs, rd })
        }
        T_DEST_REG_OP_MEM => {
            let src = cur.mem_ref(st)?;
            TraceOp::Op(OpClass::DestRegOpMem { src, rd: cur.reg()? })
        }
        T_DEST_MEM_OP_REG => {
            let rs = cur.reg()?;
            TraceOp::Op(OpClass::DestMemOpReg { rs, dst: cur.mem_ref(st)? })
        }
        T_READ_ONLY => {
            let flags = cur.byte()?;
            if flags > 1 {
                return cur.corrupt("read_only flags byte out of range");
            }
            let reads = RegSet::from_bits(cur.byte()?);
            let src = if flags & 1 != 0 { Some(cur.mem_ref(st)?) } else { None };
            TraceOp::Op(OpClass::ReadOnly { src, reads })
        }
        T_OTHER => {
            let flags = cur.byte()?;
            if flags > 3 {
                return cur.corrupt("other flags byte out of range");
            }
            let reads = RegSet::from_bits(cur.byte()?);
            let writes = RegSet::from_bits(cur.byte()?);
            let mem_read = if flags & 1 != 0 { Some(cur.mem_ref(st)?) } else { None };
            let mem_write = if flags & 2 != 0 { Some(cur.mem_ref(st)?) } else { None };
            TraceOp::Op(OpClass::Other { reads, writes, mem_read, mem_write })
        }
        T_CTRL_DIRECT => TraceOp::Ctrl(CtrlOp::Direct),
        T_CTRL_INDIRECT => {
            let target = match cur.byte()? {
                0 => JumpTarget::Reg(cur.reg()?),
                1 => JumpTarget::Mem(cur.mem_ref(st)?),
                _ => return cur.corrupt("jump target kind out of range"),
            };
            TraceOp::Ctrl(CtrlOp::Indirect { target })
        }
        T_CTRL_COND => TraceOp::Ctrl(CtrlOp::CondBranch { input: cur.opt_reg()? }),
        T_CTRL_RET => TraceOp::Ctrl(CtrlOp::Ret { slot: cur.mem_ref(st)? }),
        T_ANN_MALLOC => {
            let base = cur.addr(st)?;
            let size = cur.u32_varint()?;
            TraceOp::Annot(Annotation::Malloc { base, size })
        }
        T_ANN_FREE => TraceOp::Annot(Annotation::Free { base: cur.addr(st)? }),
        T_ANN_LOCK => TraceOp::Annot(Annotation::Lock { lock: cur.addr(st)? }),
        T_ANN_UNLOCK => TraceOp::Annot(Annotation::Unlock { lock: cur.addr(st)? }),
        T_ANN_READ_INPUT => {
            let base = cur.addr(st)?;
            let len = cur.u32_varint()?;
            TraceOp::Annot(Annotation::ReadInput { base, len })
        }
        T_ANN_SYSCALL => {
            let flags = cur.byte()?;
            if flags > 3 {
                return cur.corrupt("syscall flags byte out of range");
            }
            let arg_reg = if flags & 1 != 0 { Some(cur.reg()?) } else { None };
            let arg_mem = if flags & 2 != 0 { Some(cur.mem_ref(st)?) } else { None };
            TraceOp::Annot(Annotation::Syscall { arg_reg, arg_mem })
        }
        T_ANN_PRINTF => TraceOp::Annot(Annotation::PrintfFormat { fmt: cur.mem_ref(st)? }),
        T_ANN_THREAD_SWITCH => TraceOp::Annot(Annotation::ThreadSwitch { tid: cur.u32_varint()? }),
        T_ANN_THREAD_EXIT => TraceOp::Annot(Annotation::ThreadExit { tid: cur.u32_varint()? }),
        _ => return cur.corrupt("unknown record tag"),
    };
    Ok(TraceEntry { pc, op, addr_regs })
}

// ---------------------------------------------------------------------------
// Writer / reader.
// ---------------------------------------------------------------------------

/// Streaming encoder: one [`TraceWriter::write_chunk`] call per transport
/// batch produces one frame. The encode staging buffer is reused across
/// chunks.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    chunks: u64,
    records: u64,
    /// Frame bytes written after the file header (headers + payloads).
    stream_bytes: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the file header and readies the encoder.
    pub fn new(mut w: W) -> io::Result<TraceWriter<W>> {
        w.write_all(&MAGIC)?;
        w.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(TraceWriter { w, buf: Vec::new(), chunks: 0, records: 0, stream_bytes: 0 })
    }

    /// Encodes `batch` as one frame. An empty batch writes nothing (the
    /// format has no empty frames).
    pub fn write_chunk(&mut self, batch: &[TraceEntry]) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.buf.clear();
        let mut st = CodecState::default();
        for e in batch {
            encode_entry(&mut self.buf, &mut st, e);
        }
        let records = u32::try_from(batch.len()).expect("batch fits a u32 record count");
        let len = u32::try_from(self.buf.len()).expect("frame payload fits a u32 length");
        self.w.write_all(&records.to_le_bytes())?;
        self.w.write_all(&len.to_le_bytes())?;
        self.w.write_all(&checksum(&self.buf).to_le_bytes())?;
        self.w.write_all(&self.buf)?;
        self.chunks += 1;
        self.records += batch.len() as u64;
        self.stream_bytes += 12 + self.buf.len() as u64;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }

    /// Frames written so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records encoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encoded bytes written after the file header, frame headers included
    /// — the numerator of the bytes-per-record metric.
    pub fn stream_bytes(&self) -> u64 {
        self.stream_bytes
    }
}

/// Streaming decoder over any [`Read`].
///
/// [`TraceReader::read_chunk_into`] decodes one frame into a caller-owned,
/// reusable buffer — the file-sourced twin of the runtime's batch-grain
/// ingest path.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    buf: Vec<u8>,
    offset: u64,
    chunks: u64,
    records: u64,
}

impl<R: Read> TraceReader<R> {
    /// Validates the file header and readies the decoder.
    pub fn new(mut r: R) -> Result<TraceReader<R>, TraceError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut ver = [0u8; 4];
        r.read_exact(&mut ver).map_err(|e| match e.kind() {
            io::ErrorKind::UnexpectedEof => TraceError::BadMagic,
            _ => TraceError::Io(e),
        })?;
        let version = u32::from_le_bytes(ver);
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        Ok(TraceReader { r, buf: Vec::new(), offset: 8, chunks: 0, records: 0 })
    }

    /// Decodes the next frame into `out` (cleared first). Returns `false`
    /// on a clean end of stream, `true` when `out` holds a chunk.
    pub fn read_chunk_into(&mut self, out: &mut Vec<TraceEntry>) -> Result<bool, TraceError> {
        out.clear();
        let mut header = [0u8; 12];
        match read_exact_or_eof(&mut self.r, &mut header) {
            Ok(0) => return Ok(false),
            Ok(n) if n < header.len() => {
                return Err(TraceError::Corrupt {
                    offset: self.offset + n as u64,
                    reason: "stream ends inside a frame header",
                })
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        let records = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let sum = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if records == 0 {
            return Err(TraceError::Corrupt { offset: self.offset, reason: "zero-record frame" });
        }
        if len == 0 {
            return Err(TraceError::Corrupt {
                offset: self.offset,
                reason: "zero-length frame payload",
            });
        }
        if len > MAX_PAYLOAD_BYTES {
            return Err(TraceError::Corrupt {
                offset: self.offset,
                reason: "frame payload length exceeds the format bound",
            });
        }
        // Every record encodes to at least two bytes (tag + pc varint), so
        // a count inconsistent with the payload length is corruption. The
        // checksum covers only the payload, not the header — this check
        // must precede the `reserve` below, or a flipped count field could
        // drive a multi-gigabyte allocation instead of a typed error.
        if records as u64 * 2 > len as u64 {
            return Err(TraceError::Corrupt {
                offset: self.offset,
                reason: "record count inconsistent with frame payload length",
            });
        }
        let payload_at = self.offset + 12;
        self.buf.resize(len as usize, 0);
        match read_exact_or_eof(&mut self.r, &mut self.buf) {
            Ok(n) if n < len as usize => {
                return Err(TraceError::Corrupt {
                    offset: payload_at + n as u64,
                    reason: "stream ends inside a frame payload",
                })
            }
            Ok(_) => {}
            Err(e) => return Err(TraceError::Io(e)),
        }
        if checksum(&self.buf) != sum {
            return Err(TraceError::Corrupt {
                offset: payload_at,
                reason: "frame checksum mismatch",
            });
        }
        let mut cur = Cursor { bytes: &self.buf, pos: 0, base: payload_at };
        let mut st = CodecState::default();
        out.reserve(records as usize);
        for _ in 0..records {
            out.push(decode_entry(&mut cur, &mut st)?);
        }
        if cur.pos != self.buf.len() {
            return Err(TraceError::Corrupt {
                offset: payload_at + cur.pos as u64,
                reason: "frame payload has trailing bytes",
            });
        }
        self.offset = payload_at + len as u64;
        self.chunks += 1;
        self.records += records as u64;
        Ok(true)
    }

    /// Decodes the whole remaining stream, chunk structure flattened.
    pub fn read_all(&mut self) -> Result<Vec<TraceEntry>, TraceError> {
        let mut all = Vec::new();
        let mut chunk = Vec::new();
        while self.read_chunk_into(&mut chunk)? {
            all.extend_from_slice(&chunk);
        }
        Ok(all)
    }

    /// Frames decoded so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Records decoded so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Like `read_exact`, but distinguishes "no bytes at all" (clean EOF,
/// returns 0) and "some but not enough" (returns the short count) from
/// I/O errors.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Convenience: encodes `trace` into an in-memory buffer, one frame per
/// `chunk_bytes`-sized transport batch ([`igm_lba::chunks`]).
pub fn encode_to_vec(trace: impl IntoIterator<Item = TraceEntry>, chunk_bytes: u32) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new()).expect("writing to a Vec cannot fail");
    let mut chunker = igm_lba::chunks(trace, chunk_bytes);
    let mut batch = Vec::new();
    while chunker.next_into(&mut batch) {
        w.write_chunk(&batch).expect("writing to a Vec cannot fail");
    }
    w.finish().expect("flushing a Vec cannot fail")
}

/// Convenience: decodes a whole in-memory trace stream.
pub fn decode_from_slice(bytes: &[u8]) -> Result<Vec<TraceEntry>, TraceError> {
    TraceReader::new(bytes)?.read_all()
}
