//! Figure 14: M-TLB design space.
//!
//! (a) miss rate versus the number of level-1 bits (20 down to 8) and
//!     M-TLB entries (16 to 256): maximum and average across benchmarks;
//! (b) fixed 20-bit level-1 versus the footprint-adaptive (flexible)
//!     design, at 16/64/256 entries, with the chosen width per benchmark.

use igm_bench::run_scale;
use igm_profiling::{mtlb_flexible, mtlb_miss_rate, trace_footprint};
use igm_workload::Benchmark;

fn main() {
    let n = run_scale();
    let entries = [16usize, 64, 256];
    let bits: Vec<u8> = (8..=20).rev().collect();

    println!("=== Figure 14(a): M-TLB miss rate vs level-1 bits and entries ===");
    print!("{:<10}", "l1 bits:");
    for b in &bits {
        print!("{b:>7}");
    }
    println!();
    for &e in &entries {
        let mut maxes = vec![0.0f64; bits.len()];
        let mut sums = vec![0.0f64; bits.len()];
        for bench in Benchmark::ALL {
            for (i, &l1) in bits.iter().enumerate() {
                let m = mtlb_miss_rate(bench.trace(n), l1, e);
                maxes[i] = maxes[i].max(m);
                sums[i] += m;
            }
        }
        print!("{:<10}", format!("{e}-max"));
        for m in &maxes {
            print!("{:>6.2}%", m * 100.0);
        }
        println!();
        print!("{:<10}", format!("{e}-avg"));
        for s in &sums {
            print!("{:>6.2}%", s / Benchmark::ALL.len() as f64 * 100.0);
        }
        println!();
    }

    println!("\n=== Figure 14(b): fixed 20-bit vs flexible level-1 sizing ===");
    println!(
        "{:<14} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "benchmark", "fix-16", "fix-64", "fix-256", "flex-16", "flex-64", "flex-256"
    );
    for bench in Benchmark::ALL {
        let fixed: Vec<f64> =
            entries.iter().map(|&e| mtlb_miss_rate(bench.trace(n), 20, e)).collect();
        let fp = trace_footprint(bench.trace(n));
        let mut flex = Vec::new();
        let mut chosen = 0u8;
        for &e in &entries {
            let (bits, rate) = mtlb_flexible(&fp, bench.trace(n), e);
            chosen = bits;
            flex.push(rate);
        }
        println!(
            "{:<14} {:>9.3}% {:>9.3}% {:>9.3}%   {:>9.3}% {:>9.3}% {:>9.3}%",
            format!("{}({})", bench.name(), chosen),
            fixed[0] * 100.0,
            fixed[1] * 100.0,
            fixed[2] * 100.0,
            flex[0] * 100.0,
            flex[1] * 100.0,
            flex[2] * 100.0,
        );
    }
    println!(
        "\n(paper: fixed-20 misses up to 8.4%; flexible (10-15 bits chosen) mostly negligible)"
    );
}
