//! LockSet: Eraser-style data-race detection (Table 1).
//!
//! For each thread the current set of held locks is maintained; for each
//! shared 4-byte word a *candidate set* of locks. Whenever a thread
//! accesses a shared word, the candidate set is intersected with the
//! thread's current set; if it becomes empty, no consistent lock protects
//! the word and a race is reported.
//!
//! Metadata per word is the paper's 32-bit record: a 2-bit state (virgin /
//! exclusive / shared read-only / shared read-write) and a 30-bit payload —
//! the owning thread id while exclusive, a compressed pointer (an index
//! into the lockset registry) once shared. Locksets themselves are
//! interned, sorted lock-address lists (the auxiliary structure of
//! Table 1), with memoized intersections.
//!
//! Idempotent Filter configuration follows the paper exactly: loads and
//! stores use *different* check categories, and every annotation record
//! invalidates the whole filter (footnote 1: two same-thread accesses with
//! no intervening lock/unlock intersect with the same thread lockset, so
//! the second access cannot shrink the candidate set — filtering it is
//! safe).

use crate::cost::{CostSink, MetaMap};
use crate::violation::Violation;
use crate::{Lifeguard, LifeguardKind};
use igm_core::AccelConfig;
use igm_isa::{Annotation, MemRef};
use igm_lba::{DeliveredEvent, Etct, Event, EventType, IfEventConfig};
use igm_shadow::layout::ElemSize;
use igm_shadow::{ShadowLayout, TwoLevelShadow};
use std::collections::{HashMap, HashSet};

/// Word states (low 2 bits of the metadata record).
const VIRGIN: u32 = 0;
const EXCLUSIVE: u32 = 1;
const SHARED_READ: u32 = 2;
const SHARED_RW: u32 = 3;

fn pack(state: u32, payload: u32) -> u32 {
    (payload << 2) | state
}

fn state_of(rec: u32) -> u32 {
    rec & 3
}

fn payload_of(rec: u32) -> u32 {
    rec >> 2
}

/// Simulated lifeguard-space base of the lockset registry storage (for
/// cache modelling of slow-path accesses).
const LOCKSET_AUX_BASE: u32 = 0x0e00_0000;

/// Interned locksets with memoized intersection.
#[derive(Debug, Clone, Default)]
pub struct LocksetRegistry {
    sets: Vec<Vec<u32>>,
    index: HashMap<Vec<u32>, u32>,
    inter_memo: HashMap<(u32, u32), u32>,
}

impl LocksetRegistry {
    /// A fresh registry containing only the empty set (index 0).
    pub fn new() -> LocksetRegistry {
        let mut r = LocksetRegistry::default();
        r.intern(Vec::new());
        r
    }

    /// The empty lockset's index.
    pub const EMPTY: u32 = 0;

    /// Interns a sorted, deduplicated lock list.
    pub fn intern(&mut self, mut set: Vec<u32>) -> u32 {
        set.sort_unstable();
        set.dedup();
        if let Some(i) = self.index.get(&set) {
            return *i;
        }
        let i = self.sets.len() as u32;
        self.sets.push(set.clone());
        self.index.insert(set, i);
        i
    }

    /// The lock list for an index.
    pub fn set(&self, idx: u32) -> &[u32] {
        &self.sets[idx as usize]
    }

    /// Whether the set at `idx` is empty.
    pub fn is_empty(&self, idx: u32) -> bool {
        self.sets[idx as usize].is_empty()
    }

    /// Memoized sorted-list intersection; returns the result index and the
    /// number of list elements walked (the handler's slow-path work).
    pub fn intersect(&mut self, a: u32, b: u32) -> (u32, u32) {
        if a == b {
            return (a, 0);
        }
        let key = (a.min(b), a.max(b));
        if let Some(r) = self.inter_memo.get(&key) {
            return (*r, 1);
        }
        let (sa, sb) = (&self.sets[a as usize], &self.sets[b as usize]);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(sa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        let walked = (sa.len() + sb.len()) as u32;
        let r = self.intern(out);
        self.inter_memo.insert(key, r);
        (r, walked)
    }

    /// Simulated storage address of a lockset (for cache modelling).
    pub fn aux_va(idx: u32) -> u32 {
        LOCKSET_AUX_BASE + idx * 64
    }

    /// Number of distinct locksets interned.
    // `is_empty` here is per-set (takes an index); the registry-level
    // predicate is `is_empty_registry`.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether only the empty set exists.
    pub fn is_empty_registry(&self) -> bool {
        self.sets.len() <= 1
    }
}

/// The LockSet lifeguard.
#[derive(Debug, Clone)]
pub struct LockSet {
    meta: MetaMap,
    registry: LocksetRegistry,
    /// Current lockset index per thread.
    thread_sets: HashMap<u32, u32>,
    /// Raw lock lists per thread (uncompressed pointers of Table 1).
    thread_locks: HashMap<u32, Vec<u32>>,
    cur_tid: u32,
    /// Words already reported, to avoid duplicate reports.
    reported: HashSet<u32>,
    violations: Vec<Violation>,
    /// Fast-path / slow-path counters.
    fast_hits: u64,
    slow_hits: u64,
}

impl LockSet {
    /// One 32-bit record per 4-byte word.
    pub fn layout() -> ShadowLayout {
        ShadowLayout::for_coverage(12, 4, ElemSize::B4).expect("constant layout is valid")
    }

    /// Builds LockSet under `cfg`.
    pub fn new(cfg: &AccelConfig) -> LockSet {
        LockSet {
            meta: MetaMap::new(
                TwoLevelShadow::new(Self::layout(), 0),
                cfg.lma.then_some(cfg.mtlb_entries),
            ),
            registry: LocksetRegistry::new(),
            thread_sets: HashMap::new(),
            thread_locks: HashMap::new(),
            cur_tid: 0,
            reported: HashSet::new(),
            violations: Vec::new(),
            fast_hits: 0,
            slow_hits: 0,
        }
    }

    /// Fast-path (stable-state) accesses handled so far.
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits
    }

    /// Slow-path (lockset-intersection) accesses handled so far.
    pub fn slow_hits(&self) -> u64 {
        self.slow_hits
    }

    /// Distinct locksets created.
    pub fn lockset_count(&self) -> usize {
        self.registry.len()
    }

    fn cur_lockset(&mut self) -> u32 {
        *self.thread_sets.entry(self.cur_tid).or_insert(LocksetRegistry::EMPTY)
    }

    fn access_word(&mut self, pc: u32, word: u32, is_write: bool, cost: &mut CostSink) {
        let rec = self.meta.shadow().elem_u32(word);
        match state_of(rec) {
            VIRGIN => {
                // First access: becomes exclusive to this thread.
                cost.instr(2);
                self.meta.shadow_mut().set_elem_u32(word, pack(EXCLUSIVE, self.cur_tid));
                self.slow_hits += 1;
            }
            EXCLUSIVE if payload_of(rec) == self.cur_tid => {
                // Stable state: compare and fall through (the optimized
                // fast path of §7.1).
                cost.instr(1);
                self.fast_hits += 1;
            }
            EXCLUSIVE => {
                // Second thread: the word becomes shared; the candidate set
                // is initialized from this thread's current lockset.
                let ls = self.cur_lockset();
                let state = if is_write { SHARED_RW } else { SHARED_READ };
                cost.instr(8);
                cost.mem(LocksetRegistry::aux_va(ls));
                self.meta.shadow_mut().set_elem_u32(word, pack(state, ls));
                self.slow_hits += 1;
                if state == SHARED_RW && self.registry.is_empty(ls) {
                    self.report(pc, word);
                }
            }
            _ => {
                let cur = self.cur_lockset();
                let cand = payload_of(rec);
                let (inter, walked) = self.registry.intersect(cand, cur);
                let state =
                    if is_write || state_of(rec) == SHARED_RW { SHARED_RW } else { SHARED_READ };
                if inter == cand && state == state_of(rec) {
                    // Stable case: Sm ∩ St = Sm — checked on the fast path.
                    cost.instr(3);
                    self.fast_hits += 1;
                } else {
                    cost.instr(6 + walked);
                    cost.mem(LocksetRegistry::aux_va(cand));
                    cost.mem(LocksetRegistry::aux_va(cur));
                    self.meta.shadow_mut().set_elem_u32(word, pack(state, inter));
                    self.slow_hits += 1;
                }
                if state == SHARED_RW && self.registry.is_empty(inter) {
                    self.report(pc, word);
                }
            }
        }
    }

    fn report(&mut self, pc: u32, word: u32) {
        if self.reported.insert(word) {
            self.violations.push(Violation::DataRace { pc, addr: word, tid: self.cur_tid });
        }
    }

    fn check_access(&mut self, pc: u32, m: MemRef, is_write: bool, cost: &mut CostSink) {
        let va = self.meta.map(m.addr, cost);
        // Load the record, decode the 2-bit state, dispatch.
        cost.instr(4);
        cost.mem(va);
        let first = m.addr & !3;
        let last = m.addr.wrapping_add(m.size.bytes() - 1) & !3;
        let mut w = first;
        loop {
            self.access_word(pc, w, is_write, cost);
            if w == last {
                break;
            }
            w = w.wrapping_add(4);
        }
    }

    fn set_range_virgin(&mut self, base: u32, size: u32, cost: &mut CostSink) {
        let va = self.meta.map(base, cost);
        cost.instr(10 + size / 4); // one 4-byte record store per word
        cost.mem(va);
        let mut a = base & !3;
        while a < base.saturating_add(size) {
            self.meta.shadow_mut().set_elem_u32(a, pack(VIRGIN, 0));
            self.reported.remove(&a);
            a += 4;
        }
    }
}

impl Lifeguard for LockSet {
    fn kind(&self) -> LifeguardKind {
        LifeguardKind::LockSet
    }

    fn etct(&self) -> Etct {
        let mut etct = Etct::new();
        // Unlike AddrCheck, loads and stores are distinct checks (different
        // CC values, paper §5 / Figure 13(c)).
        etct.register(EventType::MemRead, IfEventConfig::cacheable_addr(1));
        etct.register(EventType::MemWrite, IfEventConfig::cacheable_addr(2));
        // Every annotation invalidates the filter (footnote 1).
        for et in [
            EventType::Malloc,
            EventType::Free,
            EventType::Lock,
            EventType::Unlock,
            EventType::Syscall,
            EventType::ReadInput,
            EventType::ThreadSwitch,
            EventType::ThreadExit,
        ] {
            etct.register(et, IfEventConfig::invalidates_all());
        }
        etct
    }

    fn handle(&mut self, ev: &DeliveredEvent, cost: &mut CostSink) {
        match &ev.event {
            Event::MemRead(m) => self.check_access(ev.pc, *m, false, cost),
            Event::MemWrite(m) => self.check_access(ev.pc, *m, true, cost),
            Event::Annot(a) => match a {
                Annotation::Lock { lock } => {
                    cost.instr(15);
                    let locks = self.thread_locks.entry(self.cur_tid).or_default();
                    locks.push(*lock);
                    let set = locks.clone();
                    let idx = self.registry.intern(set);
                    cost.mem(LocksetRegistry::aux_va(idx));
                    self.thread_sets.insert(self.cur_tid, idx);
                }
                Annotation::Unlock { lock } => {
                    cost.instr(15);
                    let locks = self.thread_locks.entry(self.cur_tid).or_default();
                    locks.retain(|l| l != lock);
                    let set = locks.clone();
                    let idx = self.registry.intern(set);
                    self.thread_sets.insert(self.cur_tid, idx);
                }
                Annotation::ThreadSwitch { tid } => {
                    cost.instr(4);
                    self.cur_tid = *tid;
                }
                Annotation::ThreadExit { tid } => {
                    cost.instr(4);
                    self.thread_sets.remove(tid);
                    self.thread_locks.remove(tid);
                }
                Annotation::Malloc { base, size } => {
                    self.set_range_virgin(*base, *size, cost);
                }
                Annotation::Free { base } => {
                    cost.instr(10);
                    let _ = base;
                }
                _ => cost.instr(3),
            },
            _ => cost.instr(1),
        }
    }

    fn violations(&self) -> &[Violation] {
        &self.violations
    }

    fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    fn premark_region(&mut self, _base: u32, _len: u32) {
        // Virgin is the default state; nothing to do.
    }

    fn metadata_bytes(&self) -> u64 {
        self.meta.metadata_bytes()
            + self.registry.sets.iter().map(|s| 8 + 4 * s.len() as u64).sum::<u64>()
    }
    fn try_snapshot(&self) -> Option<Box<dyn Lifeguard + Send>> {
        Some(crate::ShardableLifeguard::snapshot_shard(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lg: &mut LockSet, pc: u32, event: Event) {
        let mut c = CostSink::new();
        lg.handle(&DeliveredEvent::new(pc, event), &mut c);
    }

    fn switch(lg: &mut LockSet, tid: u32) {
        run(lg, 0, Event::Annot(Annotation::ThreadSwitch { tid }));
    }

    fn lock(lg: &mut LockSet, l: u32) {
        run(lg, 0, Event::Annot(Annotation::Lock { lock: l }));
    }

    fn unlock(lg: &mut LockSet, l: u32) {
        run(lg, 0, Event::Annot(Annotation::Unlock { lock: l }));
    }

    fn write(lg: &mut LockSet, addr: u32) {
        run(lg, 0x100, Event::MemWrite(MemRef::word(addr)));
    }

    fn read(lg: &mut LockSet, addr: u32) {
        run(lg, 0x100, Event::MemRead(MemRef::word(addr)));
    }

    #[test]
    fn exclusive_access_never_races() {
        let mut lg = LockSet::new(&AccelConfig::baseline());
        switch(&mut lg, 0);
        for _ in 0..10 {
            write(&mut lg, 0x9000);
            read(&mut lg, 0x9000);
        }
        assert!(lg.violations().is_empty());
        assert!(lg.fast_hits() >= 18, "repeat same-thread accesses use the fast path");
    }

    #[test]
    fn consistent_locking_is_race_free() {
        let mut lg = LockSet::new(&AccelConfig::baseline());
        let l = 0x8100_8000;
        switch(&mut lg, 0);
        lock(&mut lg, l);
        write(&mut lg, 0x9000);
        unlock(&mut lg, l);
        switch(&mut lg, 1);
        lock(&mut lg, l);
        write(&mut lg, 0x9000);
        read(&mut lg, 0x9000);
        unlock(&mut lg, l);
        switch(&mut lg, 0);
        lock(&mut lg, l);
        read(&mut lg, 0x9000);
        unlock(&mut lg, l);
        assert!(lg.violations().is_empty(), "{:?}", lg.violations());
    }

    #[test]
    fn unprotected_sharing_races_on_write() {
        let mut lg = LockSet::new(&AccelConfig::baseline());
        switch(&mut lg, 0);
        write(&mut lg, 0x9000);
        switch(&mut lg, 1);
        write(&mut lg, 0x9000); // no lock held: candidate set empty
        assert_eq!(lg.violations().len(), 1);
        assert!(matches!(lg.violations()[0], Violation::DataRace { tid: 1, .. }));
    }

    #[test]
    fn read_only_sharing_without_locks_is_tolerated() {
        // Eraser reports only when a shared-read-write word's candidate set
        // empties; read-only sharing (e.g. after initialization) is fine.
        let mut lg = LockSet::new(&AccelConfig::baseline());
        switch(&mut lg, 0);
        write(&mut lg, 0x9000); // initialization by owner
        switch(&mut lg, 1);
        read(&mut lg, 0x9000);
        switch(&mut lg, 0);
        read(&mut lg, 0x9000);
        assert!(lg.violations().is_empty());
    }

    #[test]
    fn inconsistent_locks_race() {
        let mut lg = LockSet::new(&AccelConfig::baseline());
        let (l1, l2) = (0x8100_8000, 0x8100_8040);
        switch(&mut lg, 0);
        lock(&mut lg, l1);
        write(&mut lg, 0x9000);
        unlock(&mut lg, l1);
        switch(&mut lg, 1);
        lock(&mut lg, l1);
        write(&mut lg, 0x9000); // candidate = {l1}
        unlock(&mut lg, l1);
        lock(&mut lg, l2);
        write(&mut lg, 0x9000); // {l1} ∩ {l2} = ∅ -> race
        unlock(&mut lg, l2);
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn race_reported_once_per_word() {
        let mut lg = LockSet::new(&AccelConfig::baseline());
        switch(&mut lg, 0);
        write(&mut lg, 0x9000);
        switch(&mut lg, 1);
        for _ in 0..5 {
            write(&mut lg, 0x9000);
        }
        assert_eq!(lg.violations().len(), 1);
    }

    #[test]
    fn malloc_resets_to_virgin() {
        let mut lg = LockSet::new(&AccelConfig::baseline());
        switch(&mut lg, 0);
        write(&mut lg, 0x9000);
        switch(&mut lg, 1);
        write(&mut lg, 0x9000);
        assert_eq!(lg.violations().len(), 1);
        // Recycled memory starts a fresh protocol.
        run(&mut lg, 0, Event::Annot(Annotation::Malloc { base: 0x9000, size: 64 }));
        write(&mut lg, 0x9000);
        switch(&mut lg, 0);
        // Second thread again unprotected: a new report for the same word.
        write(&mut lg, 0x9000);
        assert_eq!(lg.violations().len(), 2);
    }

    #[test]
    fn registry_interns_and_memoizes() {
        let mut r = LocksetRegistry::new();
        let a = r.intern(vec![3, 1, 2]);
        let b = r.intern(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(r.set(a), &[1, 2, 3]);
        let c = r.intern(vec![2, 5]);
        let (i1, _) = r.intersect(a, c);
        assert_eq!(r.set(i1), &[2]);
        let (i2, walked) = r.intersect(c, a);
        assert_eq!(i1, i2);
        assert_eq!(walked, 1, "second intersection must be memoized");
    }

    #[test]
    fn etct_separates_load_and_store_categories() {
        let lg = LockSet::new(&AccelConfig::baseline());
        let etct = lg.etct();
        assert_ne!(etct.if_config(EventType::MemRead).cc, etct.if_config(EventType::MemWrite).cc);
        for et in [EventType::Lock, EventType::Unlock, EventType::ThreadSwitch] {
            assert!(etct.if_config(et).invalidate_all, "{et:?}");
        }
    }
}
