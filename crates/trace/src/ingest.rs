//! The multiplexed ingest front-end: one OS thread, many tenant sources.
//!
//! The runtime's original ingestion pattern dedicates one blocking
//! producer thread per tenant — faithful to the paper's one-application /
//! one-log-buffer coupling, but wasteful at service scale where most
//! tenants are intermittently idle. [`Ingestor`] replaces it: a single
//! thread round-robins over pluggable [`TraceSource`]s (in-memory
//! generators, recorded trace files, readiness-polled pipes), pulling
//! ready batches and publishing them into per-tenant [`MonitorPool`]
//! sessions with the *non-blocking* [`SessionHandle::try_send_batch`].
//!
//! Backpressure is per source: a batch refused by a full log channel is
//! *staged* on its lane and retried next turn, so one slow tenant defers
//! only itself while the thread keeps servicing the others — the software
//! analogue of per-core log buffers sharing one transport fabric.
//! Fairness is a bounded number of batches per lane per turn plus
//! per-lane accounting ([`LaneStats`]) of how often each source was
//! ready, pending, or deferred by backpressure.

use crate::codec::{TraceError, TraceReader, TraceWriter};
use igm_isa::TraceEntry;
use igm_lba::{Chunks, TraceBatch};
use igm_obs::{Counter, EventKind, EventRing, Histogram};
use igm_runtime::{ChannelStatsSnapshot, MonitorPool, SessionConfig, SessionHandle, SessionReport};
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::time::{Duration, Instant};

/// What a [`TraceSource`] produced for one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// `out` holds the next batch.
    Ready,
    /// Nothing available right now; poll again later (readiness-style).
    Pending,
    /// The source is exhausted; the lane's session can finish.
    Done,
}

/// One readiness poll of a nonblocking lane endpoint — the shared
/// classification behind every readiness-polled [`TraceSource`]
/// ([`PipeSource`] over an in-process pipe, `igm-net`'s socket lanes):
/// the endpoint either delivered a whole batch into the caller's arena,
/// had nothing available yet, or its peer is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanePoll {
    /// A batch was delivered into the caller's arena.
    Delivered,
    /// Nothing available; poll again next turn.
    Idle,
    /// The endpoint is exhausted or its peer disconnected cleanly.
    Closed,
}

impl From<LanePoll> for SourceStatus {
    fn from(poll: LanePoll) -> SourceStatus {
        match poll {
            LanePoll::Delivered => SourceStatus::Ready,
            LanePoll::Idle => SourceStatus::Pending,
            LanePoll::Closed => SourceStatus::Done,
        }
    }
}

/// A pull-based supplier of record batches, polled by the [`Ingestor`].
///
/// Implementations must not block: a source with nothing available
/// returns [`SourceStatus::Pending`] and the ingest thread moves on.
pub trait TraceSource: Send {
    /// Fills `out` (cleared by the callee) with the next columnar batch.
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError>;

    /// Whether this source consumes [`TraceSource::transport_feedback`].
    /// The scheduler skips the per-turn occupancy snapshot entirely for
    /// sources that do not (the default), keeping the hot local-ingest
    /// loop free of flow-control overhead.
    fn wants_transport_feedback(&self) -> bool {
        false
    }

    /// Transport feedback, called once per scheduling turn with the lane's
    /// log-channel occupancy snapshot and capacity. Flow-controlled
    /// sources (`igm-net`'s socket lanes) turn the channel's drain into
    /// send credits for their remote producer; everything else ignores it.
    fn transport_feedback(&mut self, _occupancy: &ChannelStatsSnapshot, _capacity_bytes: u32) {}

    /// The span tag of the batch the last `next_batch` call delivered,
    /// taken at most once per batch. Sources whose frames arrive with a
    /// span context already stamped at the origin (`igm-net`'s socket
    /// lanes under the v3 wire protocol) surface it here so the lane can
    /// carry it into the pool and the frame's client- and server-side
    /// stages join into one chain. The default — local sources — returns
    /// `None`, which leaves the sampling decision to the session handle.
    fn take_span_tag(&mut self) -> Option<igm_span::FrameTag> {
        None
    }
}

/// An in-memory source: any record iterator, chunked at `chunk_bytes`
/// into columnar transport batches ([`igm_lba::chunks`] via the
/// allocation-free [`Chunks::next_into_batch`] — the generator produces
/// batches natively, no `Vec<TraceEntry>` staging).
#[derive(Debug)]
pub struct IterSource<I> {
    chunker: Chunks<I>,
}

impl<I: Iterator<Item = TraceEntry>> IterSource<I> {
    /// Wraps `trace`, batching at `chunk_bytes` compressed-record bytes.
    pub fn new(
        trace: impl IntoIterator<Item = TraceEntry, IntoIter = I>,
        chunk_bytes: u32,
    ) -> Self {
        IterSource { chunker: igm_lba::chunks(trace, chunk_bytes) }
    }
}

impl<I: Iterator<Item = TraceEntry> + Send> TraceSource for IterSource<I> {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        if self.chunker.next_into_batch(out) {
            Ok(SourceStatus::Ready)
        } else {
            Ok(SourceStatus::Done)
        }
    }
}

/// A recorded-trace source: frames stream out of a [`TraceReader`] one
/// chunk per poll, preserving the captured batch structure.
#[derive(Debug)]
pub struct FileSource<R: Read> {
    reader: TraceReader<R>,
}

impl<R: Read> FileSource<R> {
    /// Wraps an open trace stream.
    pub fn new(reader: TraceReader<R>) -> FileSource<R> {
        FileSource { reader }
    }
}

impl FileSource<BufReader<File>> {
    /// Opens the trace file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = File::open(path).map_err(TraceError::Io)?;
        Ok(FileSource { reader: TraceReader::new(BufReader::new(file))? })
    }
}

impl<R: Read + Send> TraceSource for FileSource<R> {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        if self.reader.read_chunk_into_batch(out)? {
            Ok(SourceStatus::Ready)
        } else {
            Ok(SourceStatus::Done)
        }
    }
}

/// Creates an in-process batch pipe of depth `depth`: the sender side
/// lives with an external producer (another thread, a network shim); the
/// [`PipeSource`] side is readiness-polled by the ingest thread and never
/// blocks it.
pub fn batch_pipe(depth: usize) -> (PipeSender, PipeSource) {
    let (tx, rx) = std::sync::mpsc::sync_channel(depth);
    (PipeSender { tx }, PipeSource { rx })
}

/// Producer endpoint of [`batch_pipe`].
#[derive(Debug, Clone)]
pub struct PipeSender {
    tx: SyncSender<TraceBatch>,
}

impl PipeSender {
    /// Queues one batch (anything convertible into a [`TraceBatch`]),
    /// blocking while the pipe is full. Returns the batch if the ingest
    /// side is gone.
    // The "error" is the refused batch arena itself and refusal is the hot
    // backpressure path — boxing it would add an allocation per refusal.
    #[allow(clippy::result_large_err)]
    pub fn send(&self, batch: impl Into<TraceBatch>) -> Result<(), TraceBatch> {
        self.tx.send(batch.into()).map_err(|e| e.0)
    }

    /// Queues one batch without blocking; returns it if the pipe is full
    /// or the ingest side is gone.
    #[allow(clippy::result_large_err)]
    pub fn try_send(&self, batch: impl Into<TraceBatch>) -> Result<(), TraceBatch> {
        self.tx.try_send(batch.into()).map_err(|e| match e {
            TrySendError::Full(b) | TrySendError::Disconnected(b) => b,
        })
    }
}

/// Consumer endpoint of [`batch_pipe`]: a readiness-polled pipe source.
#[derive(Debug)]
pub struct PipeSource {
    rx: Receiver<TraceBatch>,
}

impl TraceSource for PipeSource {
    fn next_batch(&mut self, out: &mut TraceBatch) -> Result<SourceStatus, TraceError> {
        out.clear();
        let poll = match self.rx.try_recv() {
            Ok(batch) => {
                *out = batch;
                LanePoll::Delivered
            }
            Err(TryRecvError::Empty) => LanePoll::Idle,
            Err(TryRecvError::Disconnected) => LanePoll::Closed,
        };
        Ok(poll.into())
    }
}

/// Ingest scheduling parameters.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Batches published per lane per scheduling turn (the fairness
    /// bound: a deep source cannot monopolize the thread).
    pub batches_per_turn: usize,
    /// Sleep applied after a full pass with no progress (every lane
    /// pending or deferred), so an idle front-end does not spin a core.
    pub idle_backoff: Duration,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig { batches_per_turn: 4, idle_backoff: Duration::from_micros(200) }
    }
}

/// Per-lane fairness and backpressure accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneStats {
    /// Batches published into the lane's session.
    pub batches: u64,
    /// Records published.
    pub records: u64,
    /// Sends refused by a full log channel and staged for retry — the
    /// lane's backpressure events (the non-blocking analogue of the SPSC
    /// channel's producer stalls).
    pub deferred_sends: u64,
    /// Polls that found the source not ready.
    pub pending_polls: u64,
    /// Scheduling turns that visited this lane.
    pub turns: u64,
}

/// The ingest front-end's registry handles (from the pool's registry, so
/// ingest metrics land on the same stats endpoint as the pool's).
#[derive(Debug, Clone)]
struct IngestObs {
    /// `igm_ingest_turn_nanos`: one lane scheduling turn.
    turn: Histogram,
    /// `igm_ingest_deferred_wait_nanos`: backpressure staging → successful
    /// publish, per deferred batch.
    deferred_wait: Histogram,
    /// `igm_ingest_lanes_opened_total`.
    lanes_opened: Counter,
    /// `igm_ingest_lane_failures_total`.
    lane_failures: Counter,
    /// The registry's lifecycle-event ring (lane failures are narrated
    /// here with their error string, in failure order).
    events: EventRing,
}

struct Lane {
    name: String,
    source: Box<dyn TraceSource>,
    session: Option<SessionHandle>,
    /// Tee-at-ingest: every batch pulled from the source is also encoded
    /// as one trace frame before publication, so piped and remote tenants
    /// leave on-disk artifacts exactly like [`crate::CaptureSession`]s.
    tee: Option<TraceWriter<Box<dyn Write + Send>>>,
    /// Where to save the `IGMX` sidecar when the tee writer indexes
    /// ([`Ingestor::add_source_teed_indexed`]); written at lane close.
    sidecar: Option<std::path::PathBuf>,
    /// Cached [`TraceSource::wants_transport_feedback`] (skips the
    /// per-turn occupancy snapshot and virtual call for local sources).
    wants_feedback: bool,
    /// A batch refused by backpressure, awaiting retry.
    staged: Option<TraceBatch>,
    /// When the staged batch was first refused (rides along so the retry
    /// that finally publishes it can report the full deferred wait).
    staged_at: Option<Instant>,
    /// The staged batch's span tag (kept across retries so a deferred
    /// frame publishes under the tag its origin stamped).
    staged_tag: Option<igm_span::FrameTag>,
    /// Pull staging arena: sources decode/chunk their columns straight
    /// into it, then ownership of the filled batch transfers to the log
    /// channel (the transport owns its batches); the lane refills the
    /// arena from the session's recycled spares.
    scratch: TraceBatch,
    source_done: bool,
    /// Source exhausted and channel closed; the worker is draining in the
    /// background and the report is collected after the scheduling loop.
    closed: bool,
    stats: LaneStats,
    error: Option<TraceError>,
    obs: IngestObs,
}

/// Everything one [`Ingestor::run`] produced.
#[derive(Debug)]
pub struct IngestReport {
    /// Finished session reports, in lane registration order.
    pub sessions: Vec<SessionReport>,
    /// Per-lane fairness/backpressure counters, same order.
    pub lanes: Vec<(String, LaneStats)>,
    /// Source errors (lane name, error), if any; the affected lanes were
    /// finalized early with whatever they had published.
    pub errors: Vec<(String, TraceError)>,
    /// Full scheduling passes over the lane set.
    pub passes: u64,
}

impl IngestReport {
    /// Total records published across all lanes.
    pub fn records(&self) -> u64 {
        self.lanes.iter().map(|(_, s)| s.records).sum()
    }
}

/// The single-threaded multiplexing front-end.
///
/// # Example
///
/// ```
/// use igm_lifeguards::LifeguardKind;
/// use igm_runtime::{MonitorPool, PoolConfig, SessionConfig};
/// use igm_trace::{Ingestor, IterSource};
/// use igm_workload::Benchmark;
///
/// let pool = MonitorPool::new(PoolConfig::with_workers(2));
/// let mut ingestor = Ingestor::new(&pool);
/// for bench in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc] {
///     ingestor.add_source(
///         SessionConfig::new(bench.name(), LifeguardKind::AddrCheck)
///             .synthetic()
///             .premark(&bench.profile().premark_regions()),
///         IterSource::new(bench.trace(3_000), 4096),
///     );
/// }
/// let report = ingestor.run(); // one thread drives all three tenants
/// assert_eq!(report.records(), 9_000);
/// assert!(report.sessions.iter().all(|s| s.violations.is_empty()));
/// pool.shutdown();
/// ```
pub struct Ingestor<'p> {
    pool: &'p MonitorPool,
    cfg: IngestConfig,
    lanes: Vec<Lane>,
    passes: u64,
    obs: IngestObs,
}

/// What one [`Ingestor::pass`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassOutcome {
    /// Whether any lane published a batch or finished this pass (when
    /// false, every open lane was pending or deferred — a driving loop
    /// should briefly back off instead of spinning).
    pub progress: bool,
    /// Lanes still open after the pass.
    pub open: usize,
}

impl<'p> Ingestor<'p> {
    /// A front-end over `pool` with default scheduling parameters.
    pub fn new(pool: &'p MonitorPool) -> Ingestor<'p> {
        Ingestor::with_config(pool, IngestConfig::default())
    }

    /// A front-end with explicit scheduling parameters.
    pub fn with_config(pool: &'p MonitorPool, cfg: IngestConfig) -> Ingestor<'p> {
        assert!(cfg.batches_per_turn > 0, "a lane must be allowed at least one batch per turn");
        let metrics = pool.metrics();
        let obs = IngestObs {
            turn: metrics
                .histogram("igm_ingest_turn_nanos", "Duration of one ingest lane scheduling turn"),
            deferred_wait: metrics.histogram(
                "igm_ingest_deferred_wait_nanos",
                "Backpressure staging to successful publish, per deferred batch",
            ),
            lanes_opened: metrics
                .counter("igm_ingest_lanes_opened_total", "Ingest lanes registered"),
            lane_failures: metrics.counter(
                "igm_ingest_lane_failures_total",
                "Ingest lanes closed early by a source or tee error",
            ),
            events: metrics.events().clone(),
        };
        Ingestor { pool, cfg, lanes: Vec::new(), passes: 0, obs }
    }

    /// Registers a tenant: opens a session under `cfg` and attaches
    /// `source` to it. Lanes run when [`Ingestor::run`] (or the stepwise
    /// [`Ingestor::pass`]) drives them; sources may be added between
    /// passes, which is how `igm-net`'s server plugs freshly accepted
    /// connections into a running front-end.
    pub fn add_source(&mut self, cfg: SessionConfig, source: impl TraceSource + 'static) {
        self.add_lane(cfg, Box::new(source), None, None);
    }

    /// Like [`Ingestor::add_source`], but also tees every batch the lane
    /// publishes into `sink` as standard trace frames (one frame per
    /// batch, in source order) — the ingest-side counterpart of
    /// [`crate::CaptureSession`], so piped and remote tenants leave
    /// on-disk artifacts too. The sink is flushed when the lane closes; a
    /// tee write failure fails only this lane.
    pub fn add_source_teed(
        &mut self,
        cfg: SessionConfig,
        source: impl TraceSource + 'static,
        sink: impl Write + Send + 'static,
    ) -> Result<(), TraceError> {
        let writer = TraceWriter::new(Box::new(sink) as Box<dyn Write + Send>)?;
        self.add_lane(cfg, Box::new(source), Some(writer), None);
        Ok(())
    }

    /// Like [`Ingestor::add_source_teed`], but the tee writer builds the
    /// per-frame posting index inline
    /// ([`TraceWriter::with_index`](crate::TraceWriter::with_index)) and
    /// the `IGMX` v2 sidecar is saved to `sidecar` when the lane closes —
    /// so a remote or piped tenant's artifact lands lake-queryable, with
    /// no offline scan needed.
    pub fn add_source_teed_indexed(
        &mut self,
        cfg: SessionConfig,
        source: impl TraceSource + 'static,
        sink: impl Write + Send + 'static,
        sidecar: std::path::PathBuf,
    ) -> Result<(), TraceError> {
        let writer = TraceWriter::with_index(Box::new(sink) as Box<dyn Write + Send>)?;
        self.add_lane(cfg, Box::new(source), Some(writer), Some(sidecar));
        Ok(())
    }

    fn add_lane(
        &mut self,
        cfg: SessionConfig,
        source: Box<dyn TraceSource>,
        tee: Option<TraceWriter<Box<dyn Write + Send>>>,
        sidecar: Option<std::path::PathBuf>,
    ) {
        let name = cfg.name.clone();
        let session = self.pool.open_session(cfg);
        let wants_feedback = source.wants_transport_feedback();
        self.obs.lanes_opened.inc();
        self.lanes.push(Lane {
            name,
            source,
            session: Some(session),
            tee,
            sidecar,
            wants_feedback,
            staged: None,
            staged_at: None,
            staged_tag: None,
            scratch: TraceBatch::new(),
            source_done: false,
            closed: false,
            stats: LaneStats::default(),
            error: None,
            obs: self.obs.clone(),
        });
    }

    /// Registered lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The configured idle backoff (what [`Ingestor::run`] sleeps after a
    /// no-progress pass; external driving loops should do the same).
    pub fn idle_backoff(&self) -> Duration {
        self.cfg.idle_backoff
    }

    /// One scheduling pass over every open lane. External drivers (the
    /// `igm-net` server loop) interleave this with their own work —
    /// accepting connections, registering new lanes — and back off on
    /// [`PassOutcome::progress`]` == false`.
    pub fn pass(&mut self) -> PassOutcome {
        self.passes += 1;
        let mut open = 0usize;
        let mut progress = false;
        for lane in &mut self.lanes {
            if lane.closed || lane.session.is_none() {
                continue;
            }
            let turn_started = self.obs.turn.start();
            progress |= lane.turn(self.cfg.batches_per_turn);
            self.obs.turn.stop(turn_started);
            open += usize::from(!(lane.closed || lane.session.is_none()));
        }
        PassOutcome { progress, open }
    }

    /// Drives every lane to completion on the calling thread and returns
    /// the combined report.
    pub fn run(mut self) -> IngestReport {
        loop {
            let pass = self.pass();
            if pass.open == 0 {
                break;
            }
            if !pass.progress {
                // Every open lane is pending or deferred: yield the core
                // briefly instead of spinning on try_send/try_recv.
                std::thread::sleep(self.cfg.idle_backoff);
            }
        }
        self.finish()
    }

    /// Collects the finished lanes into the combined report. A lane
    /// completing mid-run closed its channel without blocking (the worker
    /// drains concurrently), so one finished tenant never stalled the
    /// others; callers invoke this once every source is done, and only the
    /// session finalizers are waited on here.
    pub fn finish(self) -> IngestReport {
        let mut sessions = Vec::new();
        let mut lanes = Vec::new();
        let mut errors = Vec::new();
        for lane in self.lanes {
            if let Some(session) = lane.session {
                sessions.push(session.finish());
            }
            if let Some(err) = lane.error {
                errors.push((lane.name.clone(), err));
            }
            lanes.push((lane.name, lane.stats));
        }
        IngestReport { sessions, lanes, errors, passes: self.passes }
    }
}

impl Lane {
    /// One scheduling turn: publish up to `budget` batches. Returns
    /// whether anything was published or the lane finished.
    fn turn(&mut self, budget: usize) -> bool {
        self.stats.turns += 1;
        // Occupancy → credit hookup: hand flow-controlled sources the log
        // channel's drain state once per turn, before pulling work, so a
        // remote producer's credits track the pool's consumption. Local
        // sources opt out (`wants_feedback` cached at registration), so
        // the hot in-process loop never pays for the snapshot.
        if self.wants_feedback {
            if let Some(session) = self.session.as_ref() {
                self.source
                    .transport_feedback(&session.channel_stats(), session.channel_capacity_bytes());
            }
        }
        let mut progress = false;
        for _ in 0..budget {
            // Retry a backpressure-deferred batch before pulling new work
            // (its span tag was staged with it).
            let (batch, tag) = match self.staged.take() {
                Some(b) => (b, self.staged_tag.take()),
                None => {
                    if self.source_done {
                        self.close();
                        return true;
                    }
                    match self.source.next_batch(&mut self.scratch) {
                        Ok(SourceStatus::Ready) => {
                            // Tee before the first publish attempt: the
                            // staged-retry path re-enters above, so each
                            // batch is encoded exactly once, in source
                            // order — the same frame-per-batch layout a
                            // CaptureSession writes.
                            if let Some(tee) = self.tee.as_mut() {
                                if let Err(e) = tee.write_chunk_batch(&self.scratch) {
                                    self.error = Some(TraceError::Io(e));
                                    self.source_done = true;
                                    self.close();
                                    return true;
                                }
                            }
                            // Hand the filled arena to the channel and
                            // refill the staging slot from the session's
                            // recycled spares.
                            let spare = self
                                .session
                                .as_ref()
                                .map(SessionHandle::spare_batch)
                                .unwrap_or_default();
                            (
                                std::mem::replace(&mut self.scratch, spare),
                                self.source.take_span_tag(),
                            )
                        }
                        Ok(SourceStatus::Pending) => {
                            self.stats.pending_polls += 1;
                            return progress;
                        }
                        Ok(SourceStatus::Done) => {
                            self.source_done = true;
                            self.close();
                            return true;
                        }
                        Err(e) => {
                            // A corrupt or failing source ends its lane;
                            // the session is finalized with what it got.
                            self.error = Some(e);
                            self.source_done = true;
                            self.close();
                            return true;
                        }
                    }
                }
            };
            if batch.is_empty() {
                continue;
            }
            let records = batch.len() as u64;
            let session = self.session.as_ref().expect("lane is open");
            match session.try_send_batch_tagged(batch, tag) {
                Ok(None) => {
                    // If this batch had been deferred, report how long it
                    // waited from first refusal to publication.
                    self.obs.deferred_wait.stop(self.staged_at.take());
                    self.stats.batches += 1;
                    self.stats.records += records;
                    progress = true;
                }
                Ok(Some(refused)) => {
                    // Full channel: stage and let the other lanes run. The
                    // wait clock starts at the *first* refusal and keeps
                    // running across re-refusals.
                    if self.staged_at.is_none() {
                        self.staged_at = self.obs.deferred_wait.start();
                    }
                    self.staged = Some(refused);
                    self.staged_tag = tag;
                    self.stats.deferred_sends += 1;
                    return progress;
                }
                Err(_) => {
                    // Pool shut down under us; drop the lane.
                    self.session = None;
                    return true;
                }
            }
        }
        progress
    }

    /// Closes the lane's log channel without blocking: the owning worker
    /// drains and finalizes in the background while the ingest thread
    /// keeps servicing the other lanes; the report is collected after the
    /// scheduling loop.
    fn close(&mut self) {
        if let Some(mut tee) = self.tee.take() {
            let index = tee.take_index();
            // Flush the teed artifact; a flush failure is a lane error
            // (unless the lane already failed for a better reason). The
            // sidecar is only saved for a cleanly flushed trace — a
            // partial artifact must not come with an authoritative index.
            match tee.finish() {
                Err(e) => {
                    self.error.get_or_insert(TraceError::Io(e));
                }
                Ok(_) => {
                    if let (Some(index), Some(path)) = (index, self.sidecar.take()) {
                        if let Err(e) = index.save_file(path) {
                            self.error.get_or_insert(TraceError::Io(e));
                        }
                    }
                }
            }
        }
        if let Some(session) = self.session.as_mut() {
            session.close();
        }
        if let Some(err) = self.error.as_ref() {
            // Narrate the failure — counter for the scrape, event with the
            // error string for the endpoint's timeline.
            self.obs.lane_failures.inc();
            self.obs
                .events
                .record(EventKind::LaneFailure { lane: self.name.clone(), error: err.to_string() });
        }
        self.closed = true;
    }
}
