//! Compressed log-record size model.
//!
//! An LBA record conceptually contains the program counter, instruction
//! type, operand identifiers and data addresses. The paper's compressor
//! brings the average record below one byte (§3, Table 2: "assuming 1B per
//! compressed record"); we adopt the same working assumption for
//! instruction records and charge a fixed, larger size for software-inserted
//! annotation records, which carry uncompressed payloads (addresses,
//! lengths) and are rare.

use igm_isa::{TraceEntry, TraceOp};

/// Modelled size of a compressed instruction record, in bytes.
pub const INSTR_RECORD_BYTES: u32 = 1;

/// Modelled size of an annotation record, in bytes (type byte + two 32-bit
/// payload words).
pub const ANNOTATION_RECORD_BYTES: u32 = 9;

/// Size in bytes that `entry` occupies in the log buffer.
pub fn compressed_size(entry: &TraceEntry) -> u32 {
    match entry.op {
        TraceOp::Annot(_) => ANNOTATION_RECORD_BYTES,
        _ => INSTR_RECORD_BYTES,
    }
}

/// Groups a record stream into size-bounded batches for block transport.
///
/// Each yielded batch occupies at most `max_bytes` of compressed-record
/// space ([`compressed_size`]), except that a single record larger than
/// `max_bytes` is yielded alone (so the iterator always makes progress).
/// This is the producer-side "chunk extraction" used by the streaming
/// runtime (`igm-runtime`): the application core fills a cache-line-sized
/// batch locally and publishes it to the log channel in one operation,
/// amortizing synchronization over many records.
///
/// # Example
///
/// ```
/// use igm_isa::{OpClass, Reg, TraceEntry};
/// use igm_lba::record::chunks;
///
/// let rec = TraceEntry::op(0x1000, OpClass::ImmToReg { rd: Reg::Eax });
/// let batches: Vec<Vec<TraceEntry>> = chunks([rec; 10], 4).collect();
/// assert_eq!(batches.len(), 3); // 4 + 4 + 2 one-byte records
/// assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 10);
/// ```
pub fn chunks<I>(records: I, max_bytes: u32) -> Chunks<I::IntoIter>
where
    I: IntoIterator<Item = TraceEntry>,
{
    assert!(max_bytes > 0, "chunk size must be positive");
    Chunks { inner: records.into_iter(), max_bytes, pending: None }
}

/// Iterator returned by [`chunks`].
#[derive(Debug, Clone)]
pub struct Chunks<I> {
    inner: I,
    max_bytes: u32,
    /// A record that did not fit the previous batch.
    pending: Option<TraceEntry>,
}

/// A refillable chunk destination: the one chunking rule in
/// [`Chunks::fill`] serves both the `Vec<TraceEntry>` staging buffers and
/// the columnar [`TraceBatch`](crate::TraceBatch) arenas.
trait ChunkDest {
    fn clear(&mut self);
    fn push(&mut self, e: TraceEntry);
    fn is_empty(&self) -> bool;
}

impl ChunkDest for Vec<TraceEntry> {
    fn clear(&mut self) {
        Vec::clear(self);
    }
    fn push(&mut self, e: TraceEntry) {
        Vec::push(self, e);
    }
    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl ChunkDest for crate::TraceBatch {
    fn clear(&mut self) {
        crate::TraceBatch::clear(self);
    }
    fn push(&mut self, e: TraceEntry) {
        crate::TraceBatch::push(self, &e);
    }
    fn is_empty(&self) -> bool {
        crate::TraceBatch::is_empty(self)
    }
}

impl<I: Iterator<Item = TraceEntry>> Chunks<I> {
    /// The single copy of the size-bounded chunking rule: fills `batch`
    /// (cleared first) with the next chunk, returning whether one was
    /// produced. A record that does not fit is carried to the next call;
    /// a single record larger than the whole budget is yielded alone.
    fn fill<D: ChunkDest>(&mut self, batch: &mut D) -> bool {
        batch.clear();
        let mut used = 0u32;
        if let Some(first) = self.pending.take() {
            used += compressed_size(&first);
            batch.push(first);
        }
        for entry in self.inner.by_ref() {
            let sz = compressed_size(&entry);
            if !batch.is_empty() && used + sz > self.max_bytes {
                self.pending = Some(entry);
                return true;
            }
            used += sz;
            batch.push(entry);
            if used >= self.max_bytes {
                return true;
            }
        }
        !batch.is_empty()
    }

    /// Fills `batch` (cleared first) with the next size-bounded chunk,
    /// returning whether one was produced. This is the allocation-free
    /// twin of the `Iterator` impl: callers that pump chunks through a
    /// reusable staging buffer — the trace codec's writer, the ingest
    /// front-end's in-memory sources — reuse one `Vec`'s capacity across
    /// the whole stream instead of allocating per chunk.
    pub fn next_into(&mut self, batch: &mut Vec<TraceEntry>) -> bool {
        self.fill(batch)
    }

    /// Fills `batch` (cleared first) with the next size-bounded chunk as a
    /// structure-of-arrays [`TraceBatch`](crate::TraceBatch) — the native
    /// producer of the columnar record path. Same chunking rule as
    /// [`Chunks::next_into`] (they share the implementation); generators
    /// and the streaming producers feed the transport with batches built
    /// column-first, no `Vec<TraceEntry>` staging.
    pub fn next_into_batch(&mut self, batch: &mut crate::TraceBatch) -> bool {
        self.fill(batch)
    }
}

impl<I: Iterator<Item = TraceEntry>> Iterator for Chunks<I> {
    type Item = Vec<TraceEntry>;

    fn next(&mut self) -> Option<Vec<TraceEntry>> {
        let mut batch = Vec::new();
        if self.next_into(&mut batch) {
            Some(batch)
        } else {
            None
        }
    }
}

/// Total compressed size of a batch of records, in bytes.
pub fn batch_bytes(records: &[TraceEntry]) -> u32 {
    records.iter().map(compressed_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igm_isa::{Annotation, MemRef, OpClass, Reg};

    #[test]
    fn chunks_respect_byte_bound_and_preserve_order() {
        let mut recs = Vec::new();
        for pc in 0..100u32 {
            recs.push(TraceEntry::op(pc, OpClass::ImmToReg { rd: Reg::Eax }));
            if pc % 7 == 0 {
                recs.push(TraceEntry::annot(pc, Annotation::Free { base: pc }));
            }
        }
        let batches: Vec<_> = chunks(recs.iter().copied(), 16).collect();
        for b in &batches {
            assert!(!b.is_empty());
            assert!(batch_bytes(b) <= 16 || b.len() == 1, "oversized multi-record batch");
        }
        let flat: Vec<_> = batches.into_iter().flatten().collect();
        assert_eq!(flat, recs, "chunking must not lose, duplicate or reorder");
    }

    #[test]
    fn next_into_matches_iterator() {
        let mut recs = Vec::new();
        for pc in 0..50u32 {
            recs.push(TraceEntry::op(pc, OpClass::ImmToReg { rd: Reg::Eax }));
            if pc % 9 == 0 {
                recs.push(TraceEntry::annot(pc, Annotation::Lock { lock: pc }));
            }
        }
        let by_iter: Vec<_> = chunks(recs.iter().copied(), 12).collect();
        let mut by_into = Vec::new();
        let mut it = chunks(recs.iter().copied(), 12);
        let mut buf = Vec::new();
        while it.next_into(&mut buf) {
            by_into.push(buf.clone());
        }
        assert_eq!(by_iter, by_into);
    }

    #[test]
    fn next_into_batch_matches_next_into() {
        let mut recs = Vec::new();
        for pc in 0..50u32 {
            recs.push(TraceEntry::op(pc, OpClass::ImmToReg { rd: Reg::Eax }));
            if pc % 9 == 0 {
                recs.push(TraceEntry::annot(pc, Annotation::Lock { lock: pc }));
            }
        }
        let mut by_vec = chunks(recs.iter().copied(), 12);
        let mut by_batch = chunks(recs.iter().copied(), 12);
        let mut vec_buf = Vec::new();
        let mut batch_buf = crate::TraceBatch::new();
        loop {
            let a = by_vec.next_into(&mut vec_buf);
            let b = by_batch.next_into_batch(&mut batch_buf);
            assert_eq!(a, b, "chunk availability diverged");
            if !a {
                break;
            }
            assert_eq!(batch_buf.to_entries(), vec_buf, "chunk contents diverged");
            assert_eq!(batch_buf.compressed_bytes(), batch_bytes(&vec_buf));
        }
    }

    #[test]
    fn oversized_record_is_yielded_alone() {
        let big = TraceEntry::annot(1, Annotation::Malloc { base: 0x9000, size: 64 });
        let small = TraceEntry::op(2, OpClass::ImmToReg { rd: Reg::Eax });
        let batches: Vec<_> = chunks([small, big, small], 4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[1], vec![big]);
    }

    #[test]
    fn instruction_records_are_one_byte() {
        let e = TraceEntry::op(0x1000, OpClass::ImmToReg { rd: Reg::Eax });
        assert_eq!(compressed_size(&e), 1);
        let e = TraceEntry::op(
            0x1000,
            OpClass::MemToMem { src: MemRef::word(0), dst: MemRef::word(4) },
        );
        assert_eq!(compressed_size(&e), 1);
    }

    #[test]
    fn annotation_records_are_larger() {
        let e = TraceEntry::annot(0x1000, Annotation::Malloc { base: 0x9000, size: 64 });
        assert_eq!(compressed_size(&e), ANNOTATION_RECORD_BYTES);
    }
}
